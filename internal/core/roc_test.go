package core

import (
	"testing"

	"superpose/internal/atpg"
	"superpose/internal/power"
	"superpose/internal/trust"
)

func syntheticLot(mags []float64, detectAbove float64) *LotReport {
	lr := &LotReport{}
	for i, m := range mags {
		lr.Dies = append(lr.Dies, DieResult{Die: i, FinalMag: m})
		if m > detectAbove {
			lr.Detected++
		}
	}
	return lr
}

func TestROCSeparation(t *testing.T) {
	infected := syntheticLot([]float64{0.20, 0.25, 0.18}, 0.1)
	clean := syntheticLot([]float64{0.05, 0.08, 0.06}, 0.1)
	roc := ROC(infected, clean)
	if len(roc) == 0 {
		t.Fatal("empty ROC")
	}
	// A perfect-separation point must exist.
	perfect := false
	for _, p := range roc {
		if p.TPR == 1 && p.FPR == 0 {
			perfect = true
		}
	}
	if !perfect {
		t.Errorf("no perfect operating point in %v", roc)
	}
	// Monotone: as threshold rises, rates fall.
	for i := 1; i < len(roc); i++ {
		if roc[i].Threshold < roc[i-1].Threshold {
			t.Fatal("thresholds not sorted")
		}
		if roc[i].TPR > roc[i-1].TPR+1e-12 || roc[i].FPR > roc[i-1].FPR+1e-12 {
			t.Fatal("rates must be non-increasing in the threshold")
		}
	}
	// Margin = 0.18 - 0.08.
	if m := SeparationMargin(infected, clean); m < 0.099 || m > 0.101 {
		t.Errorf("margin = %v", m)
	}
	// Overlapping lots have negative margin.
	if m := SeparationMargin(clean, infected); m >= 0 {
		t.Errorf("reversed lots must overlap: %v", m)
	}
	if SeparationMargin(&LotReport{}, clean) != 0 {
		t.Error("empty lot margin")
	}
}

func TestRunROCEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-die pipeline run")
	}
	inst, err := trust.Build(trust.Case{Benchmark: "s35932", Trojan: "T200"}, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	lib := power.SAED90Like()
	roc, infected, clean, err := RunROC(inst.Host, lib, inst.Infected,
		Config{NumChains: 4, Varsigma: 0.10,
			ATPG: atpg.Options{Seed: 7, RandomPatterns: 32, MaxFaults: 40, FaultSample: 120}},
		LotOptions{Dies: 3, Variation: power.ThreeSigmaIntra(0.10), Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	margin := SeparationMargin(infected, clean)
	t.Logf("margin=%.4f infected=%s clean=%s", margin, infected, clean)
	if margin <= 0 {
		t.Errorf("lots overlap: margin %v", margin)
	}
	perfect := false
	for _, p := range roc {
		if p.TPR == 1 && p.FPR == 0 {
			perfect = true
		}
	}
	if !perfect {
		t.Error("no perfect operating point")
	}
}
