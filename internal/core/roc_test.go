package core

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"superpose/internal/atpg"
	"superpose/internal/power"
	"superpose/internal/trust"
)

func syntheticLot(mags []float64, detectAbove float64) *LotReport {
	lr := &LotReport{}
	for i, m := range mags {
		lr.Dies = append(lr.Dies, DieResult{Die: i, FinalMag: m})
		if m > detectAbove {
			lr.Detected++
		}
	}
	return lr
}

func TestROCSeparation(t *testing.T) {
	infected := syntheticLot([]float64{0.20, 0.25, 0.18}, 0.1)
	clean := syntheticLot([]float64{0.05, 0.08, 0.06}, 0.1)
	roc := ROC(infected, clean)
	if len(roc) == 0 {
		t.Fatal("empty ROC")
	}
	// A perfect-separation point must exist.
	perfect := false
	for _, p := range roc {
		if p.TPR == 1 && p.FPR == 0 {
			perfect = true
		}
	}
	if !perfect {
		t.Errorf("no perfect operating point in %v", roc)
	}
	// Monotone: as threshold rises, rates fall.
	for i := 1; i < len(roc); i++ {
		if roc[i].Threshold < roc[i-1].Threshold {
			t.Fatal("thresholds not sorted")
		}
		if roc[i].TPR > roc[i-1].TPR+1e-12 || roc[i].FPR > roc[i-1].FPR+1e-12 {
			t.Fatal("rates must be non-increasing in the threshold")
		}
	}
	// Margin = 0.18 - 0.08.
	if m := SeparationMargin(infected, clean); m < 0.099 || m > 0.101 {
		t.Errorf("margin = %v", m)
	}
	// Overlapping lots have negative margin.
	if m := SeparationMargin(clean, infected); m >= 0 {
		t.Errorf("reversed lots must overlap: %v", m)
	}
	if SeparationMargin(&LotReport{}, clean) != 0 {
		t.Error("empty lot margin")
	}
}

func TestRunROCEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-die pipeline run")
	}
	inst, err := trust.Build(trust.Case{Benchmark: "s35932", Trojan: "T200"}, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	lib := power.SAED90Like()
	roc, infected, clean, err := RunROC(inst.Host, lib, inst.Infected,
		Config{NumChains: 4, Varsigma: 0.10,
			ATPG: atpg.Options{Seed: 7, RandomPatterns: 32, MaxFaults: 40, FaultSample: 120}},
		LotOptions{Dies: 3, Variation: power.ThreeSigmaIntra(0.10), Seed: 11})
	if err != nil {
		t.Fatal(err)
	}
	margin := SeparationMargin(infected, clean)
	t.Logf("margin=%.4f infected=%s clean=%s", margin, infected, clean)
	if margin <= 0 {
		t.Errorf("lots overlap: margin %v", margin)
	}
	perfect := false
	for _, p := range roc {
		if p.TPR == 1 && p.FPR == 0 {
			perfect = true
		}
	}
	if !perfect {
		t.Error("no perfect operating point")
	}
}

func TestROCFromScoresNaNAndDegenerate(t *testing.T) {
	// NaN scores stay in the denominators but can never be flagged: an
	// unstable die dilutes the TPR honestly instead of vanishing.
	roc := ROCFromScores([]float64{0.2, math.NaN()}, []float64{0.05})
	if len(roc) == 0 {
		t.Fatal("empty curve")
	}
	for _, p := range roc {
		if p.TPR > 0.5+1e-12 {
			t.Errorf("NaN infected die counted as detected: %+v", p)
		}
	}
	// All-NaN populations have no curve at all.
	if roc := ROCFromScores([]float64{math.NaN()}, []float64{math.NaN()}); roc != nil {
		t.Errorf("all-NaN populations produced a curve: %v", roc)
	}
	// One-sided input still sweeps its own scores.
	roc = ROCFromScores([]float64{0.3}, nil)
	if len(roc) == 0 {
		t.Fatal("one-sided curve empty")
	}
	if roc[0].TPR != 1 || roc[0].FPR != 0 {
		t.Errorf("one-sided point %+v", roc[0])
	}
}

func TestAUCValues(t *testing.T) {
	// Perfect separation integrates to 1.
	perfect := ROCFromScores([]float64{0.2, 0.3}, []float64{0.01, 0.02})
	if auc := AUC(perfect); math.Abs(auc-1) > 1e-9 {
		t.Errorf("perfect AUC %v", auc)
	}
	// Identical populations land at chance.
	chance := ROCFromScores([]float64{0.1, 0.2}, []float64{0.1, 0.2})
	if auc := AUC(chance); math.Abs(auc-0.5) > 0.1 {
		t.Errorf("chance AUC %v", auc)
	}
	if auc := AUC(nil); !math.IsNaN(auc) {
		t.Errorf("empty-curve AUC %v, want NaN", auc)
	}
}

func TestROCPointWireRoundTrip(t *testing.T) {
	pts := []ROCPoint{
		{Threshold: 0.1, TPR: 1, FPR: 0.25},
		{Threshold: math.Inf(1), TPR: math.NaN(), FPR: 0},
	}
	b, err := json.Marshal(pts)
	if err != nil {
		t.Fatal(err)
	}
	var back []ROCPoint
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	b2, err := json.Marshal(back)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(b, b2) {
		t.Errorf("ROC wire not stable: %s vs %s", b, b2)
	}
	if back[0] != pts[0] {
		t.Errorf("finite point mangled: %+v", back[0])
	}
	if !math.IsInf(back[1].Threshold, 1) || !math.IsNaN(back[1].TPR) {
		t.Errorf("non-finite point mangled: %+v", back[1])
	}
}
