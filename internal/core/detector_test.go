package core

import (
	"testing"

	"superpose/internal/atpg"
	"superpose/internal/power"
	"superpose/internal/scan"
	"superpose/internal/trojan"
	"superpose/internal/trust"
)

// buildTestbench materializes a small benchmark case, manufactures an
// infected chip and a clean chip with identical variation parameters, and
// returns everything the pipeline needs.
func buildTestbench(t testing.TB, c trust.Case, scale float64, varsigma float64, seed uint64) (
	inst *trojan.Instance, lib *power.Library, infected, clean *Device) {
	t.Helper()
	ti, err := trust.Build(c, scale)
	if err != nil {
		t.Fatal(err)
	}
	lib = power.SAED90Like()
	v := power.ThreeSigmaIntra(varsigma)
	chipBad := power.Manufacture(ti.Infected, lib, v, seed)
	chipGood := power.Manufacture(ti.Host, lib, v, seed+1)
	const chains = 4
	return ti, lib, NewDevice(chipBad, chains, scan.LOS), NewDevice(chipGood, chains, scan.LOS)
}

func TestDetectEndToEnd(t *testing.T) {
	// s35932-T200 at scale 0.04 gives the pipeline a comfortable margin:
	// infected S-RPD ≈ 0.23, clean ≈ 0.08 against a ς = 0.10 verdict
	// threshold. (At this reduced scale the unique activity cones are
	// proportionally larger than at published size, so the margin is
	// tighter than the full-scale experiments; the weakest case,
	// s38417-T100, is exercised separately without a hard verdict.)
	inst, lib, infected, clean := buildTestbench(t, trust.Case{Benchmark: "s35932", Trojan: "T200"}, 0.04, 0.15, 42)
	cfg := Config{
		NumChains: 4,
		ATPG:      atpg.Options{Seed: 7, RandomPatterns: 32, MaxFaults: 40, FaultSample: 120},
		Varsigma:  0.10,
	}

	repBad, err := Detect(inst.Host, lib, infected, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("infected: %s", repBad.Summary())
	if !repBad.Detected {
		t.Errorf("Trojan not detected: %s", repBad.Summary())
	}
	if !repBad.HasPair {
		t.Error("no superposition pair flagged on infected device")
	}
	// The adaptive flow must magnify the seed signal.
	if repBad.AdaptiveReading.RPD <= repBad.SeedReading.RPD {
		t.Errorf("adaptive RPD %.5f did not improve on seed %.5f",
			repBad.AdaptiveReading.RPD, repBad.SeedReading.RPD)
	}
	// Strategic modification must not degrade the superposition signal.
	if repBad.HasPair {
		if absf(repBad.Strategic.Final.SRPD) < absf(repBad.Superposition.SRPD)-1e-9 {
			t.Errorf("strategic S-RPD %.5f worse than plain superposition %.5f",
				repBad.Strategic.Final.SRPD, repBad.Superposition.SRPD)
		}
	}

	repGood, err := Detect(inst.Host, lib, clean, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("clean: %s", repGood.Summary())
	if repGood.Detected {
		t.Errorf("false positive on clean device: %s", repGood.Summary())
	}
}

func absf(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}
