package core

import (
	"testing"
)

// quickRobustnessConfig mirrors the flow-test convention: tiny hosts
// with a ς = 0.08 verdict on a die (ChipSeed 99) where the clean-tester
// pipeline detects all five benchmark cases with margin and no clean-die
// false positives — the baseline the robust policy must restore under
// faults. MaxPairs is widened to 6 because fault-perturbed significance
// rankings can push the genuinely strongest pair out of a narrow top-3.
func quickRobustnessConfig() ExperimentConfig {
	return ExperimentConfig{Scale: 0.04, Varsigma: 0.08, ChipSeed: 99, MaxPairs: 6}
}

// TestRobustnessTableQuick is the acceptance criterion of the tester
// robustness work: under the combined fault regime (≥1% spikes at 10×
// plus drift) the naive single-shot policy must demonstrably degrade,
// while the robust policy restores the clean-tester verdicts on every
// benchmark case.
func TestRobustnessTableQuick(t *testing.T) {
	cfg := quickRobustnessConfig()

	row := func(regime, policy string) RobustnessRow {
		t.Helper()
		var pol AcquisitionPolicy
		switch policy {
		case "naive":
			pol = NaiveAcquisition()
		case "robust":
			pol = RobustAcquisition()
		}
		r, err := RunRobustnessRow(regime, policy, pol, cfg)
		if err != nil {
			t.Fatalf("%s/%s: %v", regime, policy, err)
		}
		return r
	}

	// Reference: the clean-tester verdicts. On a noiseless chip behind an
	// ideal tester both policies hit the fast path, so they must agree
	// exactly.
	cleanNaive := row("clean", "naive")
	cleanRobust := row("clean", "robust")
	if cleanNaive.Detected != cleanNaive.Infected || cleanNaive.FalsePos != 0 {
		t.Fatalf("clean-tester baseline broken: %s", cleanNaive)
	}
	if cleanRobust.Detected != cleanNaive.Detected || cleanRobust.FalsePos != cleanNaive.FalsePos ||
		cleanRobust.MeanSRPD != cleanNaive.MeanSRPD {
		t.Errorf("policies disagree on an ideal tester:\n  naive  %s\n  robust %s", cleanNaive, cleanRobust)
	}

	combNaive := row("combined", "naive")
	combRobust := row("combined", "robust")
	t.Logf("clean/naive:     %s", cleanNaive)
	t.Logf("combined/naive:  %s", combNaive)
	t.Logf("combined/robust: %s", combRobust)

	// The robust policy must restore the clean-tester verdicts.
	if combRobust.Detected != combRobust.Infected {
		t.Errorf("robust acquisition missed detections under combined faults: %s", combRobust)
	}
	if combRobust.FalsePos != 0 {
		t.Errorf("robust acquisition raised false positives under combined faults: %s", combRobust)
	}
	if combRobust.Unstable != 0 {
		t.Errorf("robust acquisition left unstable dies under combined faults: %s", combRobust)
	}

	// The naive policy must demonstrably degrade: wrong verdicts or
	// unstable dies somewhere in the row.
	if combNaive.Detected == combNaive.Infected && combNaive.FalsePos == 0 && combNaive.Unstable == 0 {
		t.Errorf("naive acquisition did not degrade under combined faults: %s", combNaive)
	}

	// The robust policy's extra work must be visible in the accounting:
	// at least Repeats raw samples per delivered reading (total sample
	// counts are not comparable across policies — the two runs walk
	// different search trajectories).
	if combRobust.Acquisition.Raw < 5*combRobust.Acquisition.Readings {
		t.Errorf("robust policy under-sampled: %v", combRobust.Acquisition)
	}
	if combRobust.Acquisition.Rejected == 0 {
		t.Errorf("robust policy rejected no outliers under combined faults: %v", combRobust.Acquisition)
	}
}

// TestRobustnessRowReproducible pins bit-identical regeneration: the
// fault realizations and the acquisition layer are fully seeded.
func TestRobustnessRowReproducible(t *testing.T) {
	cfg := quickRobustnessConfig()
	a, err := RunRobustnessRow("combined", "robust", RobustAcquisition(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunRobustnessRow("combined", "robust", RobustAcquisition(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Errorf("robustness row not reproducible:\n  first  %+v\n  second %+v", a, b)
	}
}
