package core

// Stage identifies a phase of the certification flow for progress
// reporting. The stages mirror the pipeline structure: seed generation
// and ranking, per-die calibration, the adaptive climb, the focused pair
// analysis, verdict confirmation, and — for lot certification — per-die
// completion.
type Stage string

// The reported stages, in pipeline order.
const (
	StageSeeds     Stage = "seeds"     // ATPG generation / seed ranking
	StageCalibrate Stage = "calibrate" // per-die power-scale calibration
	StageAdaptive  Stage = "adaptive"  // adaptive climb (Step = accepted step or seed index)
	StagePairs     Stage = "pairs"     // superposition + strategic pair analysis
	StageConfirm   Stage = "confirm"   // verdict-pair re-measurement
	StageDelay     Stage = "delay"     // transition-delay channel measurement
	StageDie       Stage = "die"       // lot certification: Step dies of Total done
)

// Progress is one progress event of a certification run. Step counts
// completed units of the stage's granularity out of Total (Total is 0
// when the stage has no meaningful denominator).
type Progress struct {
	Stage  Stage  `json:"stage"`
	Step   int    `json:"step"`
	Total  int    `json:"total"`
	Detail string `json:"detail,omitempty"`
}

// ProgressFunc receives progress events from a certification run. A nil
// func disables reporting. Callbacks run synchronously on the measuring
// goroutine — keep them cheap and never call back into the flow. During
// lot certification the per-die events fire from worker goroutines, so a
// ProgressFunc attached to a lot must be safe for concurrent use.
type ProgressFunc func(Progress)

// emit invokes the callback when non-nil.
func (f ProgressFunc) emit(stage Stage, step, total int, detail string) {
	if f != nil {
		f(Progress{Stage: stage, Step: step, Total: total, Detail: detail})
	}
}
