package core

import (
	"math"
	"testing"

	"superpose/internal/atpg"
	"superpose/internal/logic"
	"superpose/internal/power"
	"superpose/internal/scan"
	"superpose/internal/sim"
	"superpose/internal/tester"
	"superpose/internal/trust"
)

// The exhaustive cross-check: on every zoo circuit small enough to
// brute-force (≤ 12 stimulus bits), enumerate ALL input patterns and
// require the PPSFP stack — golden engine, device, sweep session, fault
// simulator — to be bit-identical (IEEE-754 bit patterns for every
// float) to the scalar reference stack, across LOS/LOC application and
// tester presets. Nothing is sampled; a single divergent lane anywhere
// in the space fails.

// exhaustiveZoo lists the brute-forceable circuits: generated multi-level
// netlists whose scan bits + PIs stay ≤ 12.
func exhaustiveZoo(t testing.TB) []*trust.Params {
	t.Helper()
	return []*trust.Params{
		{Name: "xz-narrow", PIs: 2, POs: 3, FFs: 6, Comb: 60, Levels: 4, Seed: 1},
		{Name: "xz-wide", PIs: 4, POs: 4, FFs: 8, Comb: 110, Levels: 3, Seed: 2},
		{Name: "xz-deep", PIs: 2, POs: 2, FFs: 10, Comb: 150, Levels: 6, Seed: 3},
	}
}

// allPatterns enumerates every assignment of the configuration's scan
// bits and PIs.
func allPatterns(t testing.TB, ch *scan.Chains) []*scan.Pattern {
	t.Helper()
	nScan := 0
	for i := 0; i < ch.NumChains(); i++ {
		nScan += len(ch.Chain(i))
	}
	nVars := nScan + len(ch.Netlist().PIs)
	if nVars > 12 {
		t.Fatalf("circuit too large for exhaustive enumeration (%d vars)", nVars)
	}
	pats := make([]*scan.Pattern, 0, 1<<nVars)
	for v := 0; v < 1<<nVars; v++ {
		p := ch.NewPattern()
		k := 0
		for c := 0; c < ch.NumChains(); c++ {
			for j := range p.Scan[c] {
				p.Scan[c][j] = v&(1<<k) != 0
				k++
			}
		}
		for i := range p.PI {
			p.PI[i] = v&(1<<k) != 0
			k++
		}
		pats = append(pats, p)
	}
	return pats
}

// exhaustiveStack bundles one engine kind's full measurement stack over
// its own identically-seeded die, so the two kinds see identical noise
// and tester-fault streams.
type exhaustiveStack struct {
	dev *Device
	ev  *Evaluator
}

func newExhaustiveStack(t testing.TB, ch *scan.Chains, mode scan.Mode,
	testerCfg tester.Config, kind sim.EngineKind) *exhaustiveStack {
	t.Helper()
	n := ch.Netlist()
	lib := power.SAED90Like()
	chip := power.Manufacture(n, lib, power.ThreeSigmaIntra(0.12), 41)
	dev, err := NewDeviceFromChains(chip, ch, mode)
	if err != nil {
		t.Fatal(err)
	}
	if testerCfg.Enabled() {
		dev.SetFaultModel(tester.New(testerCfg))
		dev.SetAcquisition(RobustAcquisition())
	}
	ev := NewEvaluatorFromChains(n, lib, dev, ch, mode)
	ev.SetEngine(kind)
	if ev.Engine() != kind.Resolve() || dev.Engine() != kind.Resolve() {
		t.Fatalf("stack engine resolved to %v/%v, want %v", ev.Engine(), dev.Engine(), kind.Resolve())
	}
	return &exhaustiveStack{dev: dev, ev: ev}
}

func sameBits(a, b float64) bool { return math.Float64bits(a) == math.Float64bits(b) }

// TestExhaustiveEngineEquivalence sweeps the zoo × LOS/LOC × tester
// presets and, for every pattern in the full input space, requires
// bit-identical Readings (observed, nominal and RPD) from the two
// engine stacks. The batch is deliberately fed through MeasureBatch in
// one call: the 64-lane chunking inside exercises full chunks plus the
// ragged final chunk of each space.
func TestExhaustiveEngineEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full input-space enumeration")
	}
	presets := []struct {
		name string
		cfg  tester.Config
	}{
		{"clean", tester.Config{}},
		{"combined", func() tester.Config {
			cfg, err := tester.Preset("combined", 13)
			if err != nil {
				t.Fatal(err)
			}
			return cfg
		}()},
	}
	for _, params := range exhaustiveZoo(t) {
		n, err := trust.Generate(*params)
		if err != nil {
			t.Fatal(err)
		}
		ch := scan.Configure(n, 2)
		pats := allPatterns(t, ch)
		for _, mode := range []scan.Mode{scan.LOS, scan.LOC} {
			for _, preset := range presets {
				space := pats
				if preset.cfg.Enabled() {
					// The faulty-tester regime multiplies every reading
					// by the robust policy's repeats and retries; a slice
					// of the space keeps the suite fast while still
					// covering partial-lane chunk shapes (257 % 64 = 1).
					space = pats[:min(len(pats), 257)]
				}
				scalar := newExhaustiveStack(t, ch, mode, preset.cfg, sim.EngineScalar)
				ppsfp := newExhaustiveStack(t, ch, mode, preset.cfg, sim.EnginePPSFP)

				want := scalar.ev.MeasureBatch(space)
				got := ppsfp.ev.MeasureBatch(space)
				for i := range want {
					if !sameBits(got[i].Observed, want[i].Observed) ||
						!sameBits(got[i].Nominal, want[i].Nominal) ||
						!sameBits(got[i].RPD, want[i].RPD) {
						t.Fatalf("%s %v %s pattern %d: ppsfp %+v, scalar %+v",
							n.Name, mode, preset.name, i, got[i], want[i])
					}
				}
			}
		}
	}
}

// TestExhaustiveFaultDetectionEquivalence brute-forces fault simulation:
// for every zoo circuit, every 64-pattern chunk of the full input space,
// and every collapsed fault, the PPSFP cone propagator's detection word
// must equal the scalar full-resimulation word.
func TestExhaustiveFaultDetectionEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full input-space enumeration")
	}
	for _, params := range exhaustiveZoo(t) {
		n, err := trust.Generate(*params)
		if err != nil {
			t.Fatal(err)
		}
		ch := scan.Configure(n, 2)
		pats := allPatterns(t, ch)
		reps, _ := atpg.Collapse(n, atpg.FaultList(n))

		scalar := atpg.NewFaultSimulator(ch)
		scalar.SetEngine(sim.EngineScalar)
		ppsfp := atpg.NewFaultSimulator(ch)
		ppsfp.SetEngine(sim.EnginePPSFP)

		for start := 0; start < len(pats); start += 64 {
			end := min(start+64, len(pats))
			want := scalar.DetectBatch(pats[start:end], reps)
			got := ppsfp.DetectBatch(pats[start:end], reps)
			for i := range want {
				if got[i] != want[i] {
					t.Fatalf("%s chunk %d fault %v: ppsfp %016x, scalar %016x",
						n.Name, start/64, reps[i], got[i], want[i])
				}
			}
		}
	}
}

// TestExhaustiveSweepEquivalence compares the two engine stacks' sweep
// sessions — the sparse single-flip encodings behind the adaptive climb
// — over every stimulus bit from several exhaustive base patterns, LOS
// and LOC, requiring bit-identical Readings per lane.
func TestExhaustiveSweepEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full input-space enumeration")
	}
	for _, params := range exhaustiveZoo(t) {
		n, err := trust.Generate(*params)
		if err != nil {
			t.Fatal(err)
		}
		ch := scan.Configure(n, 2)
		pats := allPatterns(t, ch)

		var cands []CellRef
		for c := 0; c < ch.NumChains(); c++ {
			for j := range ch.Chain(c) {
				cands = append(cands, CellRef{c, j})
			}
		}
		for i := range n.PIs {
			cands = append(cands, CellRef{PIChain, i})
		}

		for _, mode := range []scan.Mode{scan.LOS, scan.LOC} {
			scalar := newExhaustiveStack(t, ch, mode, tester.Config{}, sim.EngineScalar)
			ppsfp := newExhaustiveStack(t, ch, mode, tester.Config{}, sim.EnginePPSFP)
			ss, err := scalar.ev.NewSweep(cands)
			if err != nil {
				t.Fatal(err)
			}
			ps, err := ppsfp.ev.NewSweep(cands)
			if err != nil {
				t.Fatal(err)
			}

			// Base patterns spread across the space, including its ends.
			bases := []int{0, len(pats) / 3, len(pats) - 1}
			for _, bi := range bases {
				if err := ss.Rebase(pats[bi].Clone()); err != nil {
					t.Fatal(err)
				}
				if err := ps.Rebase(pats[bi].Clone()); err != nil {
					t.Fatal(err)
				}
				for c := 0; c < ss.NumChunks(); c++ {
					want := append([]Reading(nil), ss.MeasureChunk(c)...)
					got := ps.MeasureChunk(c)
					for i := range want {
						if !sameBits(got[i].Observed, want[i].Observed) ||
							!sameBits(got[i].Nominal, want[i].Nominal) ||
							!sameBits(got[i].RPD, want[i].RPD) {
							t.Fatalf("%s %v base %d chunk %d lane %d: ppsfp %+v, scalar %+v",
								n.Name, mode, bi, c, i, got[i], want[i])
						}
					}
				}
			}
		}
	}
}

// TestExhaustiveNominalPricingEquivalence prices every pattern of the
// space on both engines' golden models and compares the IEEE-754 bit
// patterns — the FP addition order of the pricing loops is part of the
// engine contract, so even a benign reassociation would fail here.
func TestExhaustiveNominalPricingEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("full input-space enumeration")
	}
	lib := power.SAED90Like()
	for _, params := range exhaustiveZoo(t) {
		n, err := trust.Generate(*params)
		if err != nil {
			t.Fatal(err)
		}
		ch := scan.Configure(n, 2)
		pats := allPatterns(t, ch)
		model := power.NewModel(n, lib)

		for _, mode := range []scan.Mode{scan.LOS, scan.LOC} {
			scalar := scan.NewEngineKind(ch, sim.EngineScalar)
			ppsfp := scan.NewEngineKind(ch, sim.EnginePPSFP)
			var smasks, pmasks []logic.Word
			for start := 0; start < len(pats); start += 64 {
				end := min(start+64, len(pats))
				batch := pats[start:end]
				if _, _, err := scalar.Launch(batch, mode); err != nil {
					t.Fatal(err)
				}
				if _, _, err := ppsfp.Launch(batch, mode); err != nil {
					t.Fatal(err)
				}
				smasks = scalar.ToggleMasks(smasks)
				pmasks = ppsfp.ToggleMasks(pmasks)
				want := model.NominalLanes(smasks, len(batch))
				got := model.NominalLanes(pmasks, len(batch))
				for i := range want {
					if !sameBits(got[i], want[i]) {
						t.Fatalf("%s %v pattern %d: nominal %x, scalar %x",
							n.Name, mode, start+i, math.Float64bits(got[i]), math.Float64bits(want[i]))
					}
				}
			}
		}
	}
}
