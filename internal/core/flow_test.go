package core

import (
	"testing"

	"superpose/internal/atpg"
	"superpose/internal/netlist"
	"superpose/internal/power"
	"superpose/internal/scan"
	"superpose/internal/stats"
	"superpose/internal/trojan"
	"superpose/internal/trust"
)

func TestAllCasesSmallScale(t *testing.T) {
	// Every Table I case, detected on the infected device and passed on
	// the clean one, at a reduced scale with a ς = 0.10 verdict.
	if testing.Short() {
		t.Skip("multi-case pipeline run")
	}
	for _, c := range trust.Cases() {
		inst, lib, infected, clean := buildTestbench(t, c, 0.04, 0.15, 42)
		cfg := Config{
			NumChains: 4,
			ATPG:      atpg.Options{Seed: 7, RandomPatterns: 32, MaxFaults: 40, FaultSample: 120},
			Varsigma:  0.10,
		}
		repB, err := Detect(inst.Host, lib, infected, cfg)
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		repG, err := Detect(inst.Host, lib, clean, cfg)
		if err != nil {
			t.Fatalf("%s: %v", c, err)
		}
		t.Logf("%s: infected |S-RPD|=%.4f detected=%v; clean |S-RPD|=%.4f detected=%v",
			c, absf(repB.FinalSRPD), repB.Detected, absf(repG.FinalSRPD), repG.Detected)
		// s38417-T100 is the suite's weakest Trojan (3 taps; the paper's
		// own weakest row at S-RPD 0.136 / 94.84%); at this reduced scale
		// it lands just under the hard ς bound, so assert the ordering
		// property instead of a binary verdict.
		if c.Trojan == "T100" && c.Benchmark == "s38417" {
			if absf(repB.FinalSRPD) <= absf(repG.FinalSRPD) {
				t.Errorf("%s: infected signal %.4f not above clean %.4f",
					c, absf(repB.FinalSRPD), absf(repG.FinalSRPD))
			}
			if p := DetectionProbability(repB.FinalSRPD, 0.10); p < 0.85 {
				t.Errorf("%s: detection probability %.3f < 0.85", c, p)
			}
		} else if !repB.Detected {
			t.Errorf("%s: Trojan missed (%s)", c, repB.Summary())
		}
		if repG.Detected {
			t.Errorf("%s: false positive (%s)", c, repG.Summary())
		}
		// Magnification shape: superposition beats the adaptive RPD, which
		// beats the raw seed RPD.
		if repB.HasPair && absf(repB.FinalSRPD) <= repB.AdaptiveReading.RPD {
			t.Errorf("%s: superposition %.4f did not magnify past adaptive %.4f",
				c, absf(repB.FinalSRPD), repB.AdaptiveReading.RPD)
		}
	}
}

// evalFixture builds a tiny evaluator over a clean (uninfected) circuit
// with no variation: measurements equal nominal exactly.
func evalFixture(t *testing.T) (*Evaluator, *scan.Chains) {
	t.Helper()
	n, err := trust.Generate(trust.Params{Name: "flow", PIs: 4, POs: 4, FFs: 12, Comb: 90, Levels: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	lib := power.SAED90Like()
	chip := power.Manufacture(n, lib, power.Variation{}, 1)
	dev := NewDevice(chip, 2, scan.LOS)
	ev := NewEvaluator(n, lib, dev, 2, scan.LOS)
	return ev, ev.Chains()
}

func TestReadingsExactWithoutVariation(t *testing.T) {
	ev, ch := evalFixture(t)
	rng := stats.NewRNG(3)
	for i := 0; i < 20; i++ {
		r := ev.Measure(ch.RandomPattern(rng))
		if absf(r.RPD) > 1e-12 {
			t.Fatalf("RPD = %v on a variation-free clean device", r.RPD)
		}
	}
}

func TestAnalyzePairSelfIsZero(t *testing.T) {
	ev, ch := evalFixture(t)
	p := ch.RandomPattern(stats.NewRNG(9))
	pa := ev.AnalyzePair(p, p)
	if pa.SRPD != 0 || pa.AUniqueCount != 0 || pa.BUniqueCount != 0 {
		t.Errorf("self-pair analysis = %+v", pa)
	}
	if pa.CommonCount == 0 {
		t.Error("self-pair must share its activity")
	}
}

func TestAnalyzePairsMatchesSingle(t *testing.T) {
	ev, ch := evalFixture(t)
	rng := stats.NewRNG(11)
	var pairs [][2]*scan.Pattern
	for i := 0; i < 40; i++ {
		pairs = append(pairs, [2]*scan.Pattern{ch.RandomPattern(rng), ch.RandomPattern(rng)})
	}
	batch := ev.AnalyzePairs(pairs)
	for i, pr := range pairs {
		single := ev.AnalyzePair(pr[0], pr[1])
		if batch[i].SRPD != single.SRPD ||
			batch[i].CommonCount != single.CommonCount ||
			batch[i].NominalAUnique != single.NominalAUnique {
			t.Fatalf("pair %d: batch %+v != single %+v", i, batch[i], single)
		}
	}
}

func TestAdaptiveTrajectoryInvariants(t *testing.T) {
	ev, ch := evalFixture(t)
	seed := ch.RandomPattern(stats.NewRNG(21))
	ar := ev.Adaptive(seed, AdaptiveOptions{MaxSteps: 30})
	if len(ar.Steps) == 0 {
		t.Fatal("no steps")
	}
	if !ar.Steps[0].Pattern.Equal(seed) {
		t.Error("step 0 must be the seed")
	}
	if ar.Steps[0].Flipped != (CellRef{-1, -1}) {
		t.Error("seed step must have no flip")
	}
	// Each subsequent step differs from its predecessor in exactly the
	// recorded bit.
	for i := 1; i < len(ar.Steps); i++ {
		prev := ar.Steps[i-1].Pattern.Clone()
		applyFlip(prev, ar.Steps[i].Flipped)
		if !prev.Equal(ar.Steps[i].Pattern) {
			t.Fatalf("step %d is not its predecessor plus the recorded flip", i)
		}
	}
	// Best index is valid and maximal.
	for _, s := range ar.Steps {
		if s.Reading.RPD > ar.Steps[ar.Best].Reading.RPD {
			t.Error("Best is not the max-RPD step")
		}
	}
	// On a variation-free clean device, the climb finds nothing: RPD
	// stays 0 and no pairs are flagged.
	if ar.Steps[ar.Best].Reading.RPD != 0 {
		t.Errorf("clean no-variation device climbed to RPD %v", ar.Steps[ar.Best].Reading.RPD)
	}
	if len(ar.Pairs) != 0 {
		t.Errorf("clean no-variation device flagged %d pairs", len(ar.Pairs))
	}
	if _, _, _, ok := ar.BestPair(); ok {
		t.Error("BestPair must report none")
	}
}

func TestTransitionDelta(t *testing.T) {
	ch := scanConfig(t, 1, 8)
	p := ch.NewPattern()
	copyBits(p.Scan[0], "00100110")
	// Flipping index 2 (the isolated 1) removes two transitions.
	if d := transitionDelta(p, 0, 2); d != -2 {
		t.Errorf("delta(idx2) = %d, want -2", d)
	}
	// Flipping index 4 (0 between 0 and 1): 00101110? original 00100110:
	// idx4=0 neighbors idx3=0, idx5=1 -> boundary move, delta 0.
	if d := transitionDelta(p, 0, 4); d != 0 {
		t.Errorf("delta(idx4) = %d, want 0", d)
	}
	// Flipping index 0 (0 next to 0): creates one end transition.
	if d := transitionDelta(p, 0, 0); d != 1 {
		t.Errorf("delta(idx0) = %d, want +1", d)
	}
	// Flipping last index (0 after 1): removes the end transition.
	if d := transitionDelta(p, 0, 7); d != -1 {
		t.Errorf("delta(idx7) = %d, want -1", d)
	}
	// Flipping inside a long run introduces two.
	q := ch.NewPattern()
	copyBits(q.Scan[0], "00000000")
	if d := transitionDelta(q, 0, 3); d != 2 {
		t.Errorf("delta(run) = %d, want +2", d)
	}
	// The probe must not mutate the pattern.
	if q.TransitionCount() != 0 {
		t.Error("transitionDelta mutated the pattern")
	}
}

func TestClassifyFlip(t *testing.T) {
	ch := scanConfig(t, 1, 8)
	p := ch.NewPattern()
	copyBits(p.Scan[0], "00100110")
	cases := map[int]ModKind{
		2: EliminateTwo,
		4: MoveTransition,
		0: IntroduceOne,
		7: EliminateOne,
	}
	for idx, want := range cases {
		if got := ClassifyFlip(p, 0, idx); got != want {
			t.Errorf("ClassifyFlip(idx %d) = %v, want %v", idx, got, want)
		}
	}
	q := ch.NewPattern()
	if got := ClassifyFlip(q, 0, 3); got != IntroduceTwo {
		t.Errorf("ClassifyFlip(run) = %v", got)
	}
	if got := ClassifyFlip(q, PIChain, 0); got != SensitizePI {
		t.Errorf("ClassifyFlip(PI) = %v", got)
	}
	// Kind names.
	for k := ModKind(0); k <= NoEffect; k++ {
		if k.String() == "" {
			t.Error("empty kind name")
		}
	}
}

func TestApplyFlip(t *testing.T) {
	ch := scanConfig(t, 2, 4)
	p := ch.NewPattern()
	applyFlip(p, CellRef{1, 2})
	if !p.Scan[1][2] {
		t.Error("scan flip not applied")
	}
	applyFlip(p, CellRef{PIChain, 0})
	if !p.PI[0] {
		t.Error("PI flip not applied")
	}
	if !(CellRef{PIChain, 0}).IsPI() || (CellRef{0, 0}).IsPI() {
		t.Error("IsPI classification")
	}
}

func TestTopIndices(t *testing.T) {
	vals := []float64{0.5, 3, 1, 2, 2.5}
	got := topIndices(vals, 3)
	want := []int{1, 4, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("topIndices = %v, want %v", got, want)
		}
	}
	if len(topIndices(vals, 99)) != len(vals) {
		t.Error("k > len must clamp")
	}
}

// scanConfig builds a shift-register-only netlist with the given chain
// shape, for pattern-manipulation tests.
func scanConfig(t *testing.T, chains, cellsPerChain int) *scan.Chains {
	t.Helper()
	b := netlist.NewBuilder("cfg")
	if _, err := b.AddInput("pi"); err != nil {
		t.Fatal(err)
	}
	total := chains * cellsPerChain
	for i := 0; i < total; i++ {
		ff := "ff" + string(rune('a'+i))
		d := "d" + string(rune('a'+i))
		if _, err := b.AddDFF(ff, d); err != nil {
			t.Fatal(err)
		}
		if _, err := b.AddGate(d, netlist.Xor, ff, "pi"); err != nil {
			t.Fatal(err)
		}
		b.MarkOutput(d)
	}
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return scan.Configure(n, chains)
}

func copyBits(dst []bool, s string) {
	for i, c := range s {
		dst[i] = c == '1'
	}
}

func TestStrategicCleanDeviceStaysQuiet(t *testing.T) {
	// On a variation-free clean device the strategic walk has a zero
	// numerator everywhere: the final S-RPD must remain 0.
	ev, ch := evalFixture(t)
	rng := stats.NewRNG(31)
	a := ch.RandomPattern(rng)
	b := a.Clone()
	applyFlip(b, CellRef{0, 2})
	sr := ev.StrategicModify(a, b, CellRef{0, 2}, StrategicOptions{MaxRounds: 8})
	if sr.Final.SRPD != 0 {
		t.Errorf("clean no-variation strategic S-RPD = %v", sr.Final.SRPD)
	}
	// The walk still aligns: final denominator no larger than initial.
	if sr.Final.NominalAUnique+sr.Final.NominalBUnique >
		sr.Initial.NominalAUnique+sr.Initial.NominalBUnique {
		t.Error("strategic walk increased the unique activity")
	}
}

func TestDeviceGroundTruthAndMeasure(t *testing.T) {
	ev, ch := evalFixture(t)
	p := ch.RandomPattern(stats.NewRNG(41))
	dev := ev.Device()
	toggles := dev.GroundTruthToggles(p)
	if len(toggles) == 0 {
		t.Fatal("random pattern toggles nothing")
	}
	if dev.Measure(p) <= 0 {
		t.Error("non-trivial pattern must consume power")
	}
	if dev.PhysicalNetlist() == nil {
		t.Error("physical netlist accessor")
	}
}

func TestCalibrationRecoversInterDieScale(t *testing.T) {
	n, err := trust.Generate(trust.Params{Name: "cal", PIs: 4, POs: 4, FFs: 16, Comb: 120, Levels: 4, Seed: 6})
	if err != nil {
		t.Fatal(err)
	}
	lib := power.SAED90Like()
	// Strong inter-die, no intra-die: calibration must recover the die
	// scale almost exactly.
	chip := power.Manufacture(n, lib, power.Variation{SigmaInter: 0.2}, 77)
	dev := NewDevice(chip, 2, scan.LOS)
	ev := NewEvaluator(n, lib, dev, 2, scan.LOS)
	rng := stats.NewRNG(1)
	var pats []*scan.Pattern
	for i := 0; i < 32; i++ {
		pats = append(pats, ev.Chains().RandomPattern(rng))
	}
	got := ev.Calibrate(pats)
	want := chip.InterScale()
	if absf(got-want) > 1e-9 {
		t.Errorf("calibrated scale %v, want %v", got, want)
	}
	// Post-calibration readings are exact.
	r := ev.Measure(pats[0])
	if absf(r.RPD) > 1e-9 {
		t.Errorf("post-calibration RPD = %v", r.RPD)
	}
}

func TestDetectWithProvidedSeedsAndLOC(t *testing.T) {
	// The pipeline must run under LOC application with user-supplied
	// seeds (the §IV-A ablation path): weaker, but functional.
	inst, lib, infected, _ := buildTestbench(t, trust.Case{Benchmark: "s35932", Trojan: "T200"}, 0.04, 0.15, 42)
	ch := scan.Configure(inst.Host, 4)
	rng := stats.NewRNG(3)
	var seeds []*scan.Pattern
	for i := 0; i < 8; i++ {
		seeds = append(seeds, ch.RandomPattern(rng))
	}
	rep, err := Detect(inst.Host, lib, NewDevice(
		power.Manufacture(inst.Infected, lib, power.ThreeSigmaIntra(0.15), 42), 4, scan.LOC),
		Config{NumChains: 4, Mode: scan.LOC, SeedPatterns: seeds, Varsigma: 0.10, MaxSeeds: 1})
	if err != nil {
		t.Fatal(err)
	}
	if rep.ATPGSummary != "" {
		t.Error("provided seeds must skip ATPG")
	}
	_ = infected
	t.Logf("LOC run: %s", rep.Summary())
}

func TestDetectErrorsWithoutInputs(t *testing.T) {
	// A netlist with no controllable inputs cannot be certified.
	b := netlistBuilderEmpty(t)
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	lib := power.SAED90Like()
	chip := power.Manufacture(n, lib, power.Variation{}, 1)
	dev := NewDevice(chip, 1, scan.LOS)
	if _, err := Detect(n, lib, dev, Config{}); err == nil {
		t.Fatal("expected seed-generation error")
	}
}

func netlistBuilderEmpty(t *testing.T) *netlist.Builder {
	t.Helper()
	return netlist.NewBuilder("empty")
}

func TestReportDetectionProbabilityAt(t *testing.T) {
	rep := &Report{FinalSRPD: 0.2}
	if p := rep.DetectionProbabilityAt(0.2); p < 0.99 {
		t.Errorf("p = %v", p)
	}
}

func TestCalibrateRobustToTrojanContamination(t *testing.T) {
	// On a zero-variation infected die, the median-based calibration must
	// land at ~1.0: the Trojan inflates a minority of readings, which the
	// median ignores, keeping pre-silicon expectations meaningful.
	inst, err := trust.Build(trust.Case{Benchmark: "s35932", Trojan: "T300"}, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	lib := power.SAED90Like()
	chip := power.Manufacture(inst.Infected, lib, power.Variation{}, 3)
	dev := NewDevice(chip, 4, scan.LOS)
	ev := NewEvaluator(inst.Host, lib, dev, 4, scan.LOS)
	rng := stats.NewRNG(8)
	var pats []*scan.Pattern
	for i := 0; i < 64; i++ {
		pats = append(pats, ev.Chains().RandomPattern(rng))
	}
	scale := ev.Calibrate(pats)
	if scale < 0.999 || scale > 1.02 {
		t.Errorf("calibration scale = %v, want ~1 (median robustness)", scale)
	}
}

func TestAdaptiveDropThresholdFiltersPairs(t *testing.T) {
	// A sky-high threshold must flag nothing; a zero-ish one flags plenty.
	inst, lib, infected, _ := buildTestbench(t, trust.Case{Benchmark: "s35932", Trojan: "T200"}, 0.04, 0.15, 42)
	ev := NewEvaluator(inst.Host, lib, infected, 4, scan.LOS)
	rng := stats.NewRNG(4)
	seed := ev.Chains().RandomPattern(rng)
	ev.Calibrate([]*scan.Pattern{seed})

	strict := ev.Adaptive(seed, AdaptiveOptions{MaxSteps: 12, DropThreshold: 100})
	if len(strict.Pairs) != 0 {
		t.Errorf("threshold 100 flagged %d pairs", len(strict.Pairs))
	}
	loose := ev.Adaptive(seed, AdaptiveOptions{MaxSteps: 12, DropThreshold: 1e-9})
	if len(loose.Pairs) == 0 {
		t.Error("near-zero threshold flagged nothing")
	}
}

// TestCrossLibraryRobustness re-runs a detection case under a different
// cell energy library: the verdict must not hinge on the particular
// energy table (only relative magnitudes enter the metrics).
func TestCrossLibraryRobustness(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run")
	}
	inst, err := trust.Build(trust.Case{Benchmark: "s35932", Trojan: "T200"}, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	for _, lib := range []*power.Library{power.SAED90Like(), power.Nangate45Like()} {
		chip := power.Manufacture(inst.Infected, lib, power.ThreeSigmaIntra(0.15), 42)
		dev := NewDevice(chip, 4, scan.LOS)
		rep, err := Detect(inst.Host, lib, dev, Config{
			NumChains: 4, Varsigma: 0.10,
			ATPG: atpg.Options{Seed: 7, RandomPatterns: 32, MaxFaults: 40, FaultSample: 120},
		})
		if err != nil {
			t.Fatalf("%s: %v", lib.Name(), err)
		}
		t.Logf("%s: %s", lib.Name(), rep.Summary())
		if !rep.Detected {
			t.Errorf("%s: Trojan missed", lib.Name())
		}
	}
}

// TestSequentialTrojanDetected is the extension capstone: a sequential
// (hidden-counter) Trojan never completes its trigger during the test
// campaign — the counter sees no capture pulses — yet its rare-event
// detector and counter-increment logic switch with the launches, and the
// superposition pipeline finds that unexplained switching.
func TestSequentialTrojanDetected(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run")
	}
	host, err := trust.Generate(trust.Params{
		Name: "seqhost", PIs: 4, POs: 12, FFs: 69, Comb: 650, Levels: 10, Seed: 0x35932,
	})
	if err != nil {
		t.Fatal(err)
	}
	rare := trojan.FindRareNets(host, 64*64, 0x200, 0.25)
	var taps []string
	for _, r := range rare {
		if r.Rareness > 0 && len(taps) < 6 {
			taps = append(taps, r.Name)
		}
	}
	anc, err := trojan.TapAncestors(host, taps)
	if err != nil {
		t.Fatal(err)
	}
	victim := ""
	for i := len(rare) - 1; i >= 0; i-- {
		if !anc[rare[i].ID] {
			victim = rare[i].Name
			break
		}
	}
	spec, err := trojan.BuildSpec("seq", rare, 6, victim)
	if err != nil {
		t.Fatal(err)
	}
	spec.SequentialDepth = 4
	inst, err := trojan.Insert(host, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.CounterFFs) != 4 {
		t.Fatal("sequential insertion failed")
	}

	lib := power.SAED90Like()
	chip := power.Manufacture(inst.Infected, lib, power.ThreeSigmaIntra(0.15), 42)
	dev := NewDevice(chip, 4, scan.LOS)
	rep, err := Detect(host, lib, dev, Config{
		NumChains: 4, Varsigma: 0.10,
		ATPG: atpg.Options{Seed: 7, RandomPatterns: 32, MaxFaults: 40, FaultSample: 120},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("sequential trojan: %s", rep.Summary())
	if !rep.Detected {
		t.Errorf("sequential Trojan missed: %s", rep.Summary())
	}
}

func TestDetectZThresholdCriterion(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run")
	}
	// At the die's true process (ς = 0.15) this case's achieved S-RPD
	// (≈0.145) falls just short of the ratio bound — the near-miss the
	// optional z-criterion exists for: the residual still stands several
	// benign standard deviations out.
	inst, lib, infected, _ := buildTestbench(t, trust.Case{Benchmark: "s35932", Trojan: "T200"}, 0.04, 0.15, 42)
	cfg := Config{
		NumChains: 4, Varsigma: 0.15,
		ATPG: atpg.Options{Seed: 7, RandomPatterns: 32, MaxFaults: 40, FaultSample: 120},
	}
	repOff, err := Detect(inst.Host, lib, infected, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if repOff.Detected {
		t.Skipf("ratio criterion already fires (S-RPD %.4f); z path not exercised", repOff.FinalSRPD)
	}
	if repOff.FinalZ < 5 {
		t.Fatalf("premise broken: z = %.1f", repOff.FinalZ)
	}
	cfg.ZThreshold = 5
	repOn, err := Detect(inst.Host, lib, infected, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if !repOn.Detected {
		t.Errorf("z-threshold criterion missed (z=%.1f): %s", repOn.FinalZ, repOn.Summary())
	}
}

func TestDetectCustomSearchOptions(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run")
	}
	// Tight budgets must still terminate cleanly and produce a report.
	inst, lib, infected, _ := buildTestbench(t, trust.Case{Benchmark: "s35932", Trojan: "T200"}, 0.04, 0.15, 42)
	rep, err := Detect(inst.Host, lib, infected, Config{
		NumChains: 4, Varsigma: 0.10, MaxSeeds: 1, MaxPairs: 1,
		Adaptive:  AdaptiveOptions{MaxSteps: 4, ScreenTop: 2},
		Strategic: StrategicOptions{MaxRounds: 2},
		ATPG:      atpg.Options{Seed: 7, RandomPatterns: 16, MaxFaults: 10, FaultSample: 40},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Adaptive.Steps) > 5 {
		t.Errorf("MaxSteps ignored: %d steps", len(rep.Adaptive.Steps))
	}
	if len(rep.Strategic.Applied) > 2 {
		t.Errorf("MaxRounds ignored: %d mods", len(rep.Strategic.Applied))
	}
}
