package core

import (
	"runtime"
	"sync"
	"testing"

	"superpose/internal/atpg"
	"superpose/internal/parallel"
	"superpose/internal/power"
	"superpose/internal/sim"
	"superpose/internal/tester"
	"superpose/internal/trojan"
	"superpose/internal/trust"
)

// The equivalence suite: the headline guarantee of the parallel engine is
// that Workers=N output is byte-for-byte equal to Workers=1 for every
// report, row and S-RPD value. Comparisons go through parallel.Diff,
// which compares floats by bit pattern (NaN-stable) and follows every
// pointer in the report structs, so nothing — Confirmed verdicts,
// UnstableSeeds/UnstablePairs annotations, acquisition counters, the
// patterns themselves — escapes the check.

var equivWorkers = []int{1, 2, 8}

func equivInstance(t testing.TB) *trojan.Instance {
	t.Helper()
	inst, err := trust.Build(trust.Case{Benchmark: "s35932", Trojan: "T200"}, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	return inst
}

func equivLotConfig(t testing.TB, inst *trojan.Instance) Config {
	t.Helper()
	cfg := Config{
		NumChains: 4, Varsigma: 0.10,
		ATPG: atpg.Options{Seed: 7, RandomPatterns: 32, MaxFaults: 40, FaultSample: 120},
	}
	cfg, err := WithSharedSeeds(inst.Host, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return cfg
}

// TestCertifyLotWorkerEquivalence runs the same lot at every worker
// count, on an ideal tester and under the combined fault preset (the
// hostile regime where NaN annotations and acquisition retries appear),
// and requires bit-identical LotReports throughout.
func TestCertifyLotWorkerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-die pipeline runs")
	}
	inst := equivInstance(t)
	lib := power.SAED90Like()
	cfg := equivLotConfig(t, inst)

	regimes := []struct {
		name string
		lot  LotOptions
	}{
		{"ideal", LotOptions{
			Dies: 4, Variation: power.ThreeSigmaIntra(0.10), Seed: 5,
		}},
		{"combined-tester", func() LotOptions {
			tc, err := tester.Preset("combined", 17)
			if err != nil {
				t.Fatal(err)
			}
			return LotOptions{
				Dies: 4, Variation: power.ThreeSigmaIntra(0.10), Seed: 5,
				Tester: tc, Acquisition: RobustAcquisition(),
			}
		}()},
	}
	for _, rg := range regimes {
		rg := rg
		t.Run(rg.name, func(t *testing.T) {
			var ref *LotReport
			for _, w := range equivWorkers {
				lot := rg.lot
				lot.Workers = w
				lr, err := CertifyLot(inst.Host, lib, inst.Infected, cfg, lot)
				if err != nil {
					t.Fatalf("workers %d: %v", w, err)
				}
				if w == 1 {
					ref = lr
					continue
				}
				if d := parallel.Diff(ref, lr); d != "" {
					t.Errorf("workers %d not bit-identical to serial: %s", w, d)
				}
			}
		})
	}
}

// TestCertifyLotEngineWorkerEquivalence crosses the engine selector with
// the worker fan-out: the same lot, on an ideal tester and under the
// combined fault preset, must produce byte-identical LotReports for
// every (engine, workers) combination — the scalar serial run is the
// single reference everything else is diffed against. This is the
// lot-level statement of the PPSFP bit-identity contract.
func TestCertifyLotEngineWorkerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-die pipeline runs")
	}
	inst := equivInstance(t)
	lib := power.SAED90Like()

	engines := []sim.EngineKind{sim.EngineScalar, sim.EnginePPSFP}
	workerCounts := []int{1, 4, runtime.NumCPU()}

	regimes := []struct {
		name string
		lot  LotOptions
	}{
		{"ideal", LotOptions{
			Dies: 3, Variation: power.ThreeSigmaIntra(0.10), Seed: 5,
		}},
		{"combined-tester", func() LotOptions {
			tc, err := tester.Preset("combined", 17)
			if err != nil {
				t.Fatal(err)
			}
			return LotOptions{
				Dies: 3, Variation: power.ThreeSigmaIntra(0.10), Seed: 5,
				Tester: tc, Acquisition: RobustAcquisition(),
			}
		}()},
	}
	for _, rg := range regimes {
		rg := rg
		t.Run(rg.name, func(t *testing.T) {
			var ref *LotReport
			for _, engine := range engines {
				cfg := Config{
					NumChains: 4, Varsigma: 0.10,
					ATPG:     atpg.Options{Seed: 7, RandomPatterns: 32, MaxFaults: 40, FaultSample: 120, Engine: engine},
					Adaptive: AdaptiveOptions{Engine: engine},
				}
				cfg, err := WithSharedSeeds(inst.Host, cfg)
				if err != nil {
					t.Fatal(err)
				}
				for _, w := range workerCounts {
					lot := rg.lot
					lot.Workers = w
					lr, err := CertifyLot(inst.Host, lib, inst.Infected, cfg, lot)
					if err != nil {
						t.Fatalf("%v workers %d: %v", engine, w, err)
					}
					if ref == nil {
						ref = lr
						continue
					}
					if d := parallel.Diff(ref, lr); d != "" {
						t.Errorf("%v workers %d not bit-identical to scalar serial: %s", engine, w, d)
					}
				}
			}
		})
	}
}

// TestTableIWorkerEquivalence requires identical Table I rows — every
// RPD, S-RPD and TCA cell — at every worker count, with the ATPG fault
// simulation parallelized along (Workers propagates into ATPG.Workers).
func TestTableIWorkerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-case pipeline runs")
	}
	var ref []TableIRow
	for _, w := range equivWorkers {
		cfg := ExperimentConfig{Scale: 0.04, Varsigma: 0.08, ChipSeed: 99, Workers: w}
		rows, err := RunTableI(cfg)
		if err != nil {
			t.Fatalf("workers %d: %v", w, err)
		}
		if len(rows) != len(trust.Cases()) {
			t.Fatalf("workers %d: %d rows", w, len(rows))
		}
		if ref == nil {
			ref = rows
			continue
		}
		if d := parallel.Diff(ref, rows); d != "" {
			t.Errorf("workers %d not bit-identical to serial: %s", w, d)
		}
	}
}

// TestCleanControlsWorkerEquivalence covers the false-positive side of
// the harness: identical control rows at every worker count.
func TestCleanControlsWorkerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-case pipeline runs")
	}
	var ref []ControlRow
	for _, w := range equivWorkers {
		cfg := ExperimentConfig{Scale: 0.04, Varsigma: 0.08, ChipSeed: 99, Workers: w}
		rows, err := RunCleanControls(cfg)
		if err != nil {
			t.Fatalf("workers %d: %v", w, err)
		}
		if ref == nil {
			ref = rows
			continue
		}
		if d := parallel.Diff(ref, rows); d != "" {
			t.Errorf("workers %d not bit-identical to serial: %s", w, d)
		}
	}
}

// TestSigmaSweepWorkerEquivalence pins the σ-sweep: per-die seeds derive
// from the grid index via parallel.Mix, so rows must be bit-identical at
// every worker count.
func TestSigmaSweepWorkerEquivalence(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-die pipeline runs")
	}
	var ref []SigmaSweepRow
	for _, w := range equivWorkers {
		cfg := ExperimentConfig{Scale: 0.04, Varsigma: 0.08, ChipSeed: 99, Workers: w}
		rows, err := RunSigmaSweep(trust.Cases()[0], cfg, []float64{0.08, 0.15}, 2)
		if err != nil {
			t.Fatalf("workers %d: %v", w, err)
		}
		if ref == nil {
			ref = rows
			continue
		}
		if d := parallel.Diff(ref, rows); d != "" {
			t.Errorf("workers %d not bit-identical to serial: %s", w, d)
		}
	}
}

// TestConcurrentLotsNoCrossContamination is the shared-state regression
// test: two certifications with different lot seeds and different
// physical netlists (one infected, one clean) run concurrently, each
// itself fanned out, and must reproduce their isolated serial results
// exactly. Any hidden shared mutable state — a package-level RNG, a
// shared device buffer, config mutation during the fan-out — shows up
// here as a diff or as a race-detector report.
func TestConcurrentLotsNoCrossContamination(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-die pipeline runs")
	}
	inst := equivInstance(t)
	lib := power.SAED90Like()
	cfg := equivLotConfig(t, inst)

	lotA := LotOptions{Dies: 3, Variation: power.ThreeSigmaIntra(0.10), Seed: 5, Workers: 1}
	lotB := LotOptions{Dies: 3, Variation: power.ThreeSigmaIntra(0.10), Seed: 1234, Workers: 1}

	// Isolated serial references.
	refA, err := CertifyLot(inst.Host, lib, inst.Infected, cfg, lotA)
	if err != nil {
		t.Fatal(err)
	}
	refB, err := CertifyLot(inst.Host, lib, inst.Host, cfg, lotB)
	if err != nil {
		t.Fatal(err)
	}

	// The same two lots, concurrently, each with its own internal fan-out.
	lotA.Workers, lotB.Workers = 2, 2
	var gotA, gotB *LotReport
	var errA, errB error
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		gotA, errA = CertifyLot(inst.Host, lib, inst.Infected, cfg, lotA)
	}()
	go func() {
		defer wg.Done()
		gotB, errB = CertifyLot(inst.Host, lib, inst.Host, cfg, lotB)
	}()
	wg.Wait()
	if errA != nil || errB != nil {
		t.Fatal(errA, errB)
	}
	if d := parallel.Diff(refA, gotA); d != "" {
		t.Errorf("infected lot contaminated by concurrent clean lot: %s", d)
	}
	if d := parallel.Diff(refB, gotB); d != "" {
		t.Errorf("clean lot contaminated by concurrent infected lot: %s", d)
	}
}
