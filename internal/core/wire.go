package core

// JSON wire support for the report types. encoding/json refuses NaN and
// ±Inf outright, but the flow legitimately produces NaN in the verdict
// fields (an unstable reading, an unstable die's |S-RPD|). The nanf
// carrier type below encodes NaN as null and ±Inf as strings, and the
// types whose floats can go non-finite (Reading, PairAnalysis, Report,
// DieResult) shadow exactly those fields through it, so Report and
// LotReport round-trip through JSON bit-for-bit — the certification
// service's contract.

import (
	"encoding/json"
	"fmt"
	"math"
)

// nanf is a float64 that survives JSON: NaN ↔ null, ±Inf ↔ "+Inf"/"-Inf",
// finite values as ordinary numbers.
type nanf float64

func (f nanf) MarshalJSON() ([]byte, error) {
	v := float64(f)
	switch {
	case math.IsNaN(v):
		return []byte("null"), nil
	case math.IsInf(v, 1):
		return []byte(`"+Inf"`), nil
	case math.IsInf(v, -1):
		return []byte(`"-Inf"`), nil
	}
	return json.Marshal(v)
}

func (f *nanf) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case "null", `"NaN"`:
		*f = nanf(math.NaN())
		return nil
	case `"+Inf"`, `"Inf"`:
		*f = nanf(math.Inf(1))
		return nil
	case `"-Inf"`:
		*f = nanf(math.Inf(-1))
		return nil
	}
	var v float64
	if err := json.Unmarshal(b, &v); err != nil {
		return fmt.Errorf("core: non-finite float literal %s: %w", b, err)
	}
	*f = nanf(v)
	return nil
}

// readingWire mirrors Reading with NaN-safe floats: an unstable
// acquisition delivers NaN through all three fields.
type readingWire struct {
	Observed nanf `json:"observed"`
	Nominal  nanf `json:"nominal"`
	RPD      nanf `json:"rpd"`
}

func (r Reading) MarshalJSON() ([]byte, error) {
	return json.Marshal(readingWire{nanf(r.Observed), nanf(r.Nominal), nanf(r.RPD)})
}

func (r *Reading) UnmarshalJSON(b []byte) error {
	var w readingWire
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*r = Reading{float64(w.Observed), float64(w.Nominal), float64(w.RPD)}
	return nil
}

// The observed powers and the S-RPD built from them go NaN on an
// unstable pair; the golden-model fields are always finite.
func (pa PairAnalysis) MarshalJSON() ([]byte, error) {
	type alias PairAnalysis
	return json.Marshal(struct {
		alias
		ObservedA nanf `json:"observed_a"`
		ObservedB nanf `json:"observed_b"`
		SRPD      nanf `json:"srpd"`
	}{alias(pa), nanf(pa.ObservedA), nanf(pa.ObservedB), nanf(pa.SRPD)})
}

func (pa *PairAnalysis) UnmarshalJSON(b []byte) error {
	type alias PairAnalysis
	var w struct {
		alias
		ObservedA nanf `json:"observed_a"`
		ObservedB nanf `json:"observed_b"`
		SRPD      nanf `json:"srpd"`
	}
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*pa = PairAnalysis(w.alias)
	pa.ObservedA = float64(w.ObservedA)
	pa.ObservedB = float64(w.ObservedB)
	pa.SRPD = float64(w.SRPD)
	return nil
}

func (r Report) MarshalJSON() ([]byte, error) {
	type alias Report
	return json.Marshal(struct {
		alias
		FinalSRPD  nanf `json:"final_srpd"`
		FinalZ     nanf `json:"final_z"`
		FusedScore nanf `json:"fused_score"`
	}{alias(r), nanf(r.FinalSRPD), nanf(r.FinalZ), nanf(r.FusedScore)})
}

func (r *Report) UnmarshalJSON(b []byte) error {
	type alias Report
	var w struct {
		alias
		FinalSRPD  nanf `json:"final_srpd"`
		FinalZ     nanf `json:"final_z"`
		FusedScore nanf `json:"fused_score"`
	}
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*r = Report(w.alias)
	r.FinalSRPD = float64(w.FinalSRPD)
	r.FinalZ = float64(w.FinalZ)
	r.FusedScore = float64(w.FusedScore)
	return nil
}

// The delay channel's score and calibration scale go NaN when no
// stimulus stabilized under the tester's delay faults.
func (d DelayResult) MarshalJSON() ([]byte, error) {
	type alias DelayResult
	return json.Marshal(struct {
		alias
		Score nanf `json:"score"`
		Scale nanf `json:"scale"`
	}{alias(d), nanf(d.Score), nanf(d.Scale)})
}

func (d *DelayResult) UnmarshalJSON(b []byte) error {
	type alias DelayResult
	var w struct {
		alias
		Score nanf `json:"score"`
		Scale nanf `json:"scale"`
	}
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*d = DelayResult(w.alias)
	d.Score = float64(w.Score)
	d.Scale = float64(w.Scale)
	return nil
}

func (d DieResult) MarshalJSON() ([]byte, error) {
	type alias DieResult
	return json.Marshal(struct {
		alias
		FinalMag   nanf `json:"final_mag"`
		DelayMag   nanf `json:"delay_mag"`
		FusedScore nanf `json:"fused_score"`
	}{alias(d), nanf(d.FinalMag), nanf(d.DelayMag), nanf(d.FusedScore)})
}

func (d *DieResult) UnmarshalJSON(b []byte) error {
	type alias DieResult
	var w struct {
		alias
		FinalMag   nanf `json:"final_mag"`
		DelayMag   nanf `json:"delay_mag"`
		FusedScore nanf `json:"fused_score"`
	}
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*d = DieResult(w.alias)
	d.FinalMag = float64(w.FinalMag)
	d.DelayMag = float64(w.DelayMag)
	d.FusedScore = float64(w.FusedScore)
	return nil
}

// ROCPoint thresholds sit infinitesimally below observed scores and are
// finite by construction, but a curve built from degenerate inputs must
// still survive the wire — every field rides the NaN-safe carrier.
func (p ROCPoint) MarshalJSON() ([]byte, error) {
	return json.Marshal(struct {
		Threshold nanf `json:"threshold"`
		TPR       nanf `json:"tpr"`
		FPR       nanf `json:"fpr"`
	}{nanf(p.Threshold), nanf(p.TPR), nanf(p.FPR)})
}

func (p *ROCPoint) UnmarshalJSON(b []byte) error {
	var w struct {
		Threshold nanf `json:"threshold"`
		TPR       nanf `json:"tpr"`
		FPR       nanf `json:"fpr"`
	}
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*p = ROCPoint{float64(w.Threshold), float64(w.TPR), float64(w.FPR)}
	return nil
}
