package core

import (
	"strings"
	"testing"

	"superpose/internal/atpg"
	"superpose/internal/power"
	"superpose/internal/trust"
)

func TestCertifyLot(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-die pipeline run")
	}
	inst, err := trust.Build(trust.Case{Benchmark: "s35932", Trojan: "T200"}, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	lib := power.SAED90Like()
	cfg := Config{
		NumChains: 4, Varsigma: 0.10,
		ATPG: atpg.Options{Seed: 7, RandomPatterns: 32, MaxFaults: 40, FaultSample: 120},
	}
	cfg, err = WithSharedSeeds(inst.Host, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.SeedPatterns) == 0 {
		t.Fatal("shared seeds missing")
	}
	// Idempotent.
	cfg2, err := WithSharedSeeds(inst.Host, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg2.SeedPatterns) != len(cfg.SeedPatterns) {
		t.Fatal("WithSharedSeeds must be idempotent")
	}

	lot := LotOptions{Dies: 3, Variation: power.ThreeSigmaIntra(0.10), Seed: 5}

	bad, err := CertifyLot(inst.Host, lib, inst.Infected, cfg, lot)
	if err != nil {
		t.Fatal(err)
	}
	good, err := CertifyLot(inst.Host, lib, inst.Host, cfg, lot)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("infected lot: %s", bad)
	t.Logf("clean lot:    %s", good)

	if bad.DetectionRate() < 1.0 {
		t.Errorf("infected lot detection rate %.2f, want 1.0", bad.DetectionRate())
	}
	if good.DetectionRate() > 0 {
		t.Errorf("clean lot false positive rate %.2f", good.DetectionRate())
	}
	if bad.SRPD.Mean <= good.SRPD.Mean {
		t.Error("infected lot signal must exceed clean lot signal")
	}
	if !strings.Contains(bad.String(), "dies flagged") {
		t.Error("lot summary formatting")
	}
	if len(bad.Dies) != 3 || bad.Dies[1].Die != 1 {
		t.Error("die bookkeeping")
	}
}

func TestCertifyLotWithMeasurementNoise(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-die pipeline run")
	}
	inst, err := trust.Build(trust.Case{Benchmark: "s35932", Trojan: "T200"}, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	lib := power.SAED90Like()
	cfg, err := WithSharedSeeds(inst.Host, Config{
		NumChains: 4, Varsigma: 0.10,
		ATPG: atpg.Options{Seed: 7, RandomPatterns: 32, MaxFaults: 40, FaultSample: 120},
	})
	if err != nil {
		t.Fatal(err)
	}
	lot := LotOptions{Dies: 2, Variation: power.ThreeSigmaIntra(0.10), Seed: 5, MeasurementNoise: 0.002}
	rep, err := CertifyLot(inst.Host, lib, inst.Infected, cfg, lot)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("noisy lot: %s", rep)
	if rep.DetectionRate() < 0.5 {
		t.Errorf("mild tester noise collapsed detection: %s", rep)
	}
}

func TestLotEmpty(t *testing.T) {
	lr := &LotReport{}
	if lr.DetectionRate() != 0 {
		t.Error("empty lot rate")
	}
}

func TestCleanLotUnderTesterNoiseNeedsAveraging(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-die pipeline run")
	}
	// Tester noise inflates mined residuals on clean dies; measurement
	// averaging restores the false-positive margin.
	inst, err := trust.Build(trust.Case{Benchmark: "s35932", Trojan: "T200"}, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	lib := power.SAED90Like()
	cfg, err := WithSharedSeeds(inst.Host, Config{
		NumChains: 4, Varsigma: 0.10,
		ATPG: atpg.Options{Seed: 7, RandomPatterns: 32, MaxFaults: 40, FaultSample: 120},
	})
	if err != nil {
		t.Fatal(err)
	}
	lot := LotOptions{
		Dies: 2, Variation: power.ThreeSigmaIntra(0.10), Seed: 5,
		MeasurementNoise: 0.002, MeasurementRepeats: 32,
	}
	clean, err := CertifyLot(inst.Host, lib, inst.Host, cfg, lot)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("clean lot with averaged noisy tester: %s", clean)
	if clean.DetectionRate() > 0 {
		t.Errorf("averaged tester noise still produced false positives: %s", clean)
	}
}
