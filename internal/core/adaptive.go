package core

import (
	"context"
	"math"

	"superpose/internal/scan"
	"superpose/internal/sim"
)

// CellRef addresses one stimulus bit: a scan bit (Chain >= 0) or a primary
// input (Chain == PIChain, Index = PI position).
type CellRef struct {
	Chain int `json:"chain"`
	Index int `json:"index"`
}

// PIChain is the sentinel Chain value marking a primary-input bit.
const PIChain = -1

// IsPI reports whether the reference addresses a primary input.
func (r CellRef) IsPI() bool { return r.Chain == PIChain }

// applyFlip flips the referenced bit in place.
func applyFlip(p *scan.Pattern, r CellRef) {
	if r.IsPI() {
		p.PI[r.Index] = !p.PI[r.Index]
		return
	}
	p.Scan[r.Chain][r.Index] = !p.Scan[r.Chain][r.Index]
}

// transitionDelta returns the change in the pattern's LOS transition count
// if bit (chain, idx) were flipped.
func transitionDelta(p *scan.Pattern, chain, idx int) int {
	bits := p.Scan[chain]
	delta := 0
	flip := func(j int) { bits[j] = !bits[j] }
	count := func() int {
		c := 0
		lo, hi := idx-1, idx+1
		if lo < 0 {
			lo = 0
		}
		if hi > len(bits)-1 {
			hi = len(bits) - 1
		}
		for j := lo + 1; j <= hi; j++ {
			if bits[j] != bits[j-1] {
				c++
			}
		}
		return c
	}
	before := count()
	flip(idx)
	after := count()
	flip(idx) // restore
	delta = after - before
	return delta
}

// AdaptiveOptions tunes the §IV-B flow.
type AdaptiveOptions struct {
	// MaxSteps bounds the number of accepted modifications (default
	// 4 × scan-bit count).
	MaxSteps int
	// DropThreshold is the |S-RPD| level between adjacent steps that
	// counts as the "suspiciously-large drop" of §IV-C and flags the pair
	// for superposition analysis. Default 0.02.
	DropThreshold float64
	// MinGain is the minimum RPD improvement for accepting a step
	// (default 1e-6: any strict improvement).
	MinGain float64
	// ScreenTop is how many of the largest-residual candidates receive a
	// full superposition analysis per step (default 6). The candidate with
	// the largest raw residual is not necessarily the best pair: a smaller
	// residual over a much smaller unique activity yields a stronger
	// S-RPD — the Fig. 1 ideal is a static sensitization difference whose
	// unique set is tiny.
	ScreenTop int
	// Engine selects the simulation backend for the whole climb — the
	// golden-model launches, the device's physical launches, and the
	// sweep session's base launches. Auto (the zero value) keeps the
	// workbench's current engine (PPSFP over the SoA netlist core unless
	// reconfigured); scalar is the reference oracle. The trajectory is
	// bit-identical across kinds.
	Engine sim.EngineKind
	// LegacyMeasure routes the candidate batches through the reference
	// clone-and-measure path (one materialized pattern and a full
	// 64-lane launch per chunk) instead of the incremental single-flip
	// sweep engine. The two paths are bit-identical — the reference path
	// exists as the correctness oracle the sweep equivalence suite runs
	// against, not as a different algorithm.
	LegacyMeasure bool
	// Progress, when non-nil, receives a StageAdaptive event per accepted
	// climb step (Step = accepted steps so far, Total = MaxSteps). It
	// never alters the climb.
	Progress ProgressFunc
}

func (o AdaptiveOptions) withDefaults(p *scan.Pattern) AdaptiveOptions {
	if o.MaxSteps == 0 {
		bits := 0
		for _, c := range p.Scan {
			bits += len(c)
		}
		o.MaxSteps = 4*bits + 16
	}
	if o.DropThreshold == 0 {
		o.DropThreshold = 0.02
	}
	if o.MinGain == 0 {
		o.MinGain = 1e-6
	}
	if o.ScreenTop == 0 {
		o.ScreenTop = 6
	}
	return o
}

// AdaptiveStep is one accepted state of the flow.
type AdaptiveStep struct {
	Pattern     *scan.Pattern `json:"pattern,omitempty"`
	Reading     Reading       `json:"reading"`
	Flipped     CellRef       `json:"flipped"` // the bit flipped to reach this step ({-1,-1} for the seed)
	Transitions int           `json:"transitions"`
}

// PairCandidate is a pattern pair flagged by the drop screen: the two
// patterns differ in exactly the Critical stimulus bit, and their
// superposition signal exceeded the drop threshold.
type PairCandidate struct {
	A        *scan.Pattern `json:"a,omitempty"`
	B        *scan.Pattern `json:"b,omitempty"`
	Critical CellRef       `json:"critical"`
	SRPD     float64       `json:"srpd"`
	// Significance is the residual in units of √(Σe²) over the unique
	// sets (see PairAnalysis.Significance) — the selection key. Ranking by
	// raw |S-RPD| would favor tiny-denominator pairs whose benign
	// variation happens to be extreme; significance normalizes by the
	// variation exposure instead.
	Significance float64 `json:"significance"`
}

// AdaptiveResult is the full trajectory of one adaptive run.
type AdaptiveResult struct {
	Steps []AdaptiveStep `json:"steps"`
	// Best indexes the step with the highest RPD — the "final test pattern
	// achieved by the adaptive flow alone" of Table I.
	Best int `json:"best"`
	// Pairs lists drop-flagged adjacent pairs, in discovery order.
	Pairs []PairCandidate `json:"pairs,omitempty"`
}

// BestPattern returns the max-RPD pattern of the trajectory.
func (r *AdaptiveResult) BestPattern() *scan.Pattern { return r.Steps[r.Best].Pattern }

// BestPair returns the drop-flagged pair with the highest significance
// along with the critical bit (the single flip separating the two
// patterns), or ok=false if no drop was flagged.
func (r *AdaptiveResult) BestPair() (a, b *scan.Pattern, critical CellRef, ok bool) {
	best := -1
	var bestSig float64
	for i, pc := range r.Pairs {
		if best < 0 || pc.Significance > bestSig {
			best, bestSig = i, pc.Significance
		}
	}
	if best < 0 {
		return nil, nil, CellRef{}, false
	}
	pc := r.Pairs[best]
	return pc.A, pc.B, pc.Critical, true
}

// Adaptive runs the §IV-B flow from a seed pattern as a greedy hill climb
// on the suspicious signal: at every step it measures every single-bit
// scan flip of the current pattern and accepts the one with the highest
// RPD, stopping at a local maximum. Because RPD normalizes the unexplained
// power by the nominal activity, the climb both quiets ancillary activity
// (smaller PN) and sensitizes whatever the golden model cannot explain —
// "pursuing those potential Trojan-related effects" (§IV-B).
//
// Alongside the climb runs the §IV-C drop screen: every candidate whose
// reading falls hardest below the current pattern's expectation is
// analyzed through superposition, and pairs whose |S-RPD| exceeds the
// drop threshold are flagged for the focused §IV-D stage.
func (ev *Evaluator) Adaptive(seed *scan.Pattern, opt AdaptiveOptions) *AdaptiveResult {
	res, _ := ev.AdaptiveContext(context.Background(), seed, opt)
	return res
}

// AdaptiveContext is Adaptive under a run context: the climb checks ctx
// between candidate chunks and between steps, and a cancellation (or
// deadline expiry) aborts it mid-climb, returning the trajectory
// accepted so far together with ctx's error. The device's acquisition is
// expected to share the same context (see DetectContext), so an abort
// never steers the search with partially-acquired readings. With a
// background context the climb is bit-identical to Adaptive.
func (ev *Evaluator) AdaptiveContext(ctx context.Context, seed *scan.Pattern, opt AdaptiveOptions) (*AdaptiveResult, error) {
	opt = opt.withDefaults(seed)
	if opt.Engine != sim.EngineAuto {
		ev.SetEngine(opt.Engine)
	}
	cur := seed.Clone()
	res := &AdaptiveResult{
		Steps: []AdaptiveStep{{
			Pattern:     cur,
			Reading:     ev.Measure(cur),
			Flipped:     CellRef{-1, -1},
			Transitions: cur.TransitionCount(),
		}},
	}

	// The candidate set — every single-bit stimulus flip — is invariant
	// across steps: scan bits change launch activity, primary-input bits
	// change sensitization at zero launch cost (PIs hold static across
	// the LOS launch). Build it, the residual buffer, and the measurement
	// machinery once; the per-step loop reuses them all.
	nbits := len(cur.PI)
	for _, c := range cur.Scan {
		nbits += len(c)
	}
	cands := make([]CellRef, 0, nbits)
	for c := range cur.Scan {
		for j := range cur.Scan[c] {
			cands = append(cands, CellRef{c, j})
		}
	}
	for i := range cur.PI {
		cands = append(cands, CellRef{PIChain, i})
	}
	if len(cands) == 0 {
		return res, ctx.Err()
	}
	residuals := make([]float64, len(cands))

	// Candidate measurement: the single-flip sweep engine by default
	// (base simulated once per step, only flip cones re-evaluated), or
	// the clone-and-measure reference path. Both produce bit-identical
	// readings; the reference path materializes every candidate, the
	// sweep only the few a step actually needs (the accepted flip and
	// the screened pairs).
	var (
		sweep    *Sweep
		patterns []*scan.Pattern // reference path: per-candidate clones
		batchBuf []*scan.Pattern
	)
	if opt.LegacyMeasure {
		patterns = make([]*scan.Pattern, len(cands))
		batchBuf = make([]*scan.Pattern, 64)
	} else {
		// The flip list depends only on the scan shape, so the cached
		// session (with its structural cone plans) is reusable across
		// climbs; the length check guards the invariant.
		sweep = ev.adaptiveSweep
		if sweep == nil || len(sweep.Candidates()) != len(cands) {
			var err error
			sweep, err = ev.NewSweep(cands)
			if err != nil {
				// cands are generated from the pattern shape; a mismatch with
				// the scan configuration is an internal invariant violation.
				panic("core: Adaptive sweep construction: " + err.Error())
			}
			ev.adaptiveSweep = sweep
		}
	}
	// patternAt materializes candidate idx as a standalone pattern.
	patternAt := func(idx int) *scan.Pattern {
		if patterns != nil {
			return patterns[idx]
		}
		q := cur.Clone()
		applyFlip(q, cands[idx])
		return q
	}
	// sweepBased tracks whether the sweep session's base state matches
	// cur: accepted steps advance it incrementally (one flip-cone
	// re-evaluation), so the full two-sided base launch happens only once
	// per climb; a vetoed confirmation leaves cur — and the state —
	// untouched.
	sweepBased := false

	for step := 0; step < opt.MaxSteps; step++ {
		if ctx.Err() != nil {
			break
		}
		// Measure all candidates, 64 per chunk. Two results matter: the
		// candidate with the strongest suspicious signal (the greedy step)
		// and the candidate whose reading drops hardest below the current
		// pattern's expectation — the §IV-C indicator that the flip just
		// deactivated something the golden model does not know about.
		curReading := res.Steps[len(res.Steps)-1].Reading
		bestIdx, bestRPD := -1, 0.0
		if sweep != nil && !sweepBased {
			if err := sweep.Rebase(cur); err != nil {
				panic("core: Adaptive sweep rebase: " + err.Error())
			}
			sweepBased = true
		}
		for start := 0; start < len(cands); start += 64 {
			if ctx.Err() != nil {
				break
			}
			end := min(start+64, len(cands))
			var rds []Reading
			if sweep != nil {
				rds = sweep.MeasureChunk(start / 64)
			} else {
				batch := batchBuf[:end-start]
				for i, cr := range cands[start:end] {
					q := cur.Clone()
					applyFlip(q, cr)
					batch[i] = q
					patterns[start+i] = q
				}
				rds = ev.MeasureBatch(batch)
			}
			for i, rd := range rds {
				// Readings the acquisition layer could not stabilize
				// (NaN) are excluded from the climb: a phantom reading
				// must never steer the search.
				if !math.IsNaN(rd.RPD) && (bestIdx < 0 || rd.RPD > bestRPD) {
					bestIdx, bestRPD = start+i, rd.RPD
				}
				// Superposition numerator of (cur, candidate): observed
				// power change not explained by the nominal model.
				residuals[start+i] = abs((curReading.Observed - rd.Observed) -
					(curReading.Nominal - rd.Nominal))
			}
		}

		// A cancellation observed during the candidate loop aborts the
		// climb here, before the screen or the greedy step can act on a
		// partially-measured round.
		if ctx.Err() != nil {
			break
		}

		// Focused superposition analysis of the top residual droppers
		// (NaN residuals — unstabilized readings — are never selected).
		top := topIndices(residuals, opt.ScreenTop)
		pairs := make([][2]*scan.Pattern, len(top))
		topPats := make([]*scan.Pattern, len(top))
		for i, idx := range top {
			topPats[i] = patternAt(idx)
			pairs[i] = [2]*scan.Pattern{cur, topPats[i]}
		}
		for i, pa := range ev.AnalyzePairs(pairs) {
			if abs(pa.SRPD) > opt.DropThreshold {
				res.Pairs = append(res.Pairs, PairCandidate{
					A: cur, B: topPats[i], Critical: cands[top[i]],
					SRPD: pa.SRPD, Significance: pa.Significance(),
				})
			}
		}

		// Local maximum: stop when no flip improves the signal. bestIdx
		// stays -1 when every reading of the round was unstable — treat
		// that as no improvement rather than indexing a phantom winner.
		if bestIdx < 0 || bestRPD <= curReading.RPD+opt.MinGain {
			break
		}

		chosen := cands[bestIdx]
		next := patternAt(bestIdx)

		// The batch reading proposed the step; the confirmation reading
		// has the final word. On an ideal tester the two are identical
		// and the veto can never fire; under tester faults a single
		// inflated batch lane would otherwise steer the entire search
		// toward a phantom maximum. A vetoed (or unstable) confirmation
		// rejects the step and re-runs the round on fresh measurements.
		confirm := ev.Measure(next)
		if math.IsNaN(confirm.RPD) || confirm.RPD <= curReading.RPD+opt.MinGain {
			continue
		}
		res.Steps = append(res.Steps, AdaptiveStep{
			Pattern:     next,
			Reading:     confirm,
			Flipped:     chosen,
			Transitions: next.TransitionCount(),
		})
		opt.Progress.emit(StageAdaptive, len(res.Steps)-1, opt.MaxSteps, "climb step accepted")

		// Superposition screen of the accepted adjacent pair as well.
		pa := ev.AnalyzePair(cur, next)
		if mag := abs(pa.SRPD); mag > opt.DropThreshold {
			res.Pairs = append(res.Pairs, PairCandidate{
				A: cur, B: next, Critical: chosen,
				SRPD: pa.SRPD, Significance: pa.Significance(),
			})
		}
		if sweep != nil && sweepBased {
			if err := sweep.Advance(chosen, next); err != nil {
				panic("core: Adaptive sweep advance: " + err.Error())
			}
		}
		cur = next
	}

	for i, s := range res.Steps {
		if s.Reading.RPD > res.Steps[res.Best].Reading.RPD {
			res.Best = i
		}
	}
	return res, ctx.Err()
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// topIndices returns the indices of the k largest values in descending
// value order (ties broken by ascending index). NaN values — residuals
// of readings the acquisition layer could not stabilize — are never
// selected, so the result may hold fewer than k entries. One pass with
// a k-sized insertion buffer: k is small (the ScreenTop handful), so
// the shift-down beats heap bookkeeping and allocates once.
func topIndices(vals []float64, k int) []int {
	if k > len(vals) {
		k = len(vals)
	}
	if k <= 0 {
		return nil
	}
	out := make([]int, 0, k)
	for i, v := range vals {
		if math.IsNaN(v) {
			continue
		}
		// Find the insertion point: after every kept value >= v, so
		// equal values stay in ascending-index order.
		pos := len(out)
		for pos > 0 && v > vals[out[pos-1]] {
			pos--
		}
		if pos == k {
			continue
		}
		if len(out) < k {
			out = append(out, 0)
		}
		copy(out[pos+1:], out[pos:])
		out[pos] = i
	}
	return out
}
