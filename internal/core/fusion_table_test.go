package core

import (
	"bytes"
	"encoding/json"
	"math"
	"testing"

	"superpose/internal/delay"
	"superpose/internal/power"
	"superpose/internal/scan"
	"superpose/internal/tester"
	"superpose/internal/timing"
	"superpose/internal/trust"
)

// quickFusionRow runs one fusion-table row at the quick test scale.
func quickFusionRow(t *testing.T, preset string, workers int) FusionRow {
	t.Helper()
	cfg := quickRobustnessConfig()
	cfg.Workers = workers
	row, err := RunFusionRow(preset, trust.Cases()[0], cfg, 4, 3)
	if err != nil {
		t.Fatalf("fusion row %s: %v", preset, err)
	}
	return row
}

// TestFusionHonestyZeroFalsePositives is the calibration-honesty
// criterion: across every tester preset of the fusion table, the
// learned operating point flags zero clean dies — on the training
// controls by construction, and on the held-out clean lot because the
// margin absorbs the preset's residual measurement scatter.
func TestFusionHonestyZeroFalsePositives(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-lot pipeline run")
	}
	for _, preset := range FusionPresets {
		preset := preset
		t.Run(preset, func(t *testing.T) {
			row := quickFusionRow(t, preset, 0)
			t.Logf("%s", row)
			if row.TrainFP != 0 {
				t.Errorf("learned threshold flags %d/%d training controls", row.TrainFP, row.TrainDies)
			}
			if row.FusedFP != 0 {
				t.Errorf("fused verdict flags %d/%d held-out clean dies", row.FusedFP, row.Clean)
			}
			if row.FusedDetected == 0 {
				t.Errorf("fused verdict missed every infected die: %s", row)
			}
			if math.IsNaN(row.FusedAUC) {
				t.Errorf("fused AUC is NaN: %s", row)
			}
		})
	}
}

// TestFusionRowWorkerDeterminism: the learned threshold and the full
// row — calibration, AUCs, ROC curves, per-lot counts — must be
// bit-identical at any worker count. Training canonicalizes the
// observation order, and every lot derives its seeds from the die
// index alone, so serial and saturated runs may not diverge anywhere.
func TestFusionRowWorkerDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-lot pipeline run")
	}
	serial := quickFusionRow(t, "combined", 1)
	fanned := quickFusionRow(t, "combined", 4)
	sj, err := json.Marshal(serial)
	if err != nil {
		t.Fatal(err)
	}
	fj, err := json.Marshal(fanned)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(sj, fj) {
		t.Errorf("fusion row differs across worker counts:\nworkers=1: %s\nworkers=4: %s", sj, fj)
	}
}

// delayChannelDetect runs the first benchmark case's infected die with
// the delay channel active under a named tester preset — the delay
// analogue of retryAcqDetect. A fresh instance, chip, and device are
// built per call so repeated runs share no state.
func delayChannelDetect(t *testing.T, channel Channel, regime string) *Report {
	t.Helper()
	cfg := quickRobustnessConfig().withDefaults()
	inst, err := trust.Build(trust.Cases()[0], cfg.Scale)
	if err != nil {
		t.Fatal(err)
	}
	lib := power.SAED90Like()
	variation := power.ThreeSigmaIntra(cfg.Varsigma)
	chip := power.Manufacture(inst.Infected, lib, variation, cfg.ChipSeed)
	dev := NewDevice(chip, cfg.NumChains, scan.LOS)
	defer dev.Close()
	if channel.UsesDelay() {
		dev.SetDelayChip(delay.Manufacture(inst.Infected, timing.SAED90LikeDelays(), variation, cfg.ChipSeed))
	}
	dev.SetAcquisition(RobustAcquisition())
	tc, err := tester.Preset(regime, cfg.ChipSeed)
	if err != nil {
		t.Fatal(err)
	}
	if tc.Enabled() {
		dev.SetFaultModel(tester.New(tc))
	}
	rep, err := Detect(inst.Host, lib, dev, Config{
		NumChains:   cfg.NumChains,
		ATPG:        cfg.ATPG,
		MaxSeeds:    cfg.MaxSeeds,
		MaxPairs:    cfg.MaxPairs,
		Varsigma:    cfg.Varsigma,
		Acquisition: RobustAcquisition(),
		Channel:     channel,
	})
	if err != nil {
		t.Fatalf("detect (%s/%s): %v", channel, regime, err)
	}
	return rep
}

// TestDelayChannelRetryBitIdentical extends the PR-5 acquisition
// identity contract to the delay channel: under the combined preset
// (power spikes + drift + TDC jitter/quantization/drops) two runs of
// the identical configuration produce bit-identical reports, delay
// result included.
func TestDelayChannelRetryBitIdentical(t *testing.T) {
	a := delayChannelDetect(t, ChannelDelay, "combined")
	b := delayChannelDetect(t, ChannelDelay, "combined")
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Errorf("delay-channel runs differ:\nfirst:  %s\nsecond: %s", aj, bj)
	}
	if a.Delay == nil {
		t.Fatal("delay channel selected but no delay result")
	}
	if math.IsNaN(a.Delay.Score) {
		t.Errorf("delay score NaN under robust acquisition: %+v", a.Delay)
	}
}

// TestDelayChannelDoesNotPerturbPower is the cross-channel identity
// contract: adding the delay channel must leave every power-channel
// field bit-identical — the delay path draws from its own RNG streams
// (tester delayRNG, decorrelated delay die) and never touches the
// power chip's noise stream or the evaluator's drift counters.
func TestDelayChannelDoesNotPerturbPower(t *testing.T) {
	powerOnly := delayChannelDetect(t, ChannelPower, "combined")
	withDelay := delayChannelDetect(t, ChannelDelay, "combined")

	if withDelay.Delay == nil {
		t.Fatal("delay run carried no delay result")
	}
	// The delay acquisitions are accounted in the device's shared
	// counters, so the totals legitimately grow…
	if withDelay.Acquisition.Readings <= powerOnly.Acquisition.Readings {
		t.Errorf("delay run recorded no extra acquisitions: %v vs %v",
			withDelay.Acquisition, powerOnly.Acquisition)
	}
	// …but after stripping the delay-only fields and the accounting,
	// every power-verdict field must match exactly.
	withDelay.Channel = powerOnly.Channel
	withDelay.Delay = nil
	withDelay.Acquisition = powerOnly.Acquisition
	aj, err := json.Marshal(powerOnly)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(withDelay)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Errorf("delay channel perturbed the power verdict:\npower-only: %s\nwith-delay: %s", aj, bj)
	}
}

// TestFusedChannelRequiresDelayChip: selecting a delay-bearing channel
// on a device without a delay die is a configuration error, not a
// silent power-only run.
func TestFusedChannelRequiresDelayChip(t *testing.T) {
	cfg := quickRobustnessConfig().withDefaults()
	inst, err := trust.Build(trust.Cases()[0], cfg.Scale)
	if err != nil {
		t.Fatal(err)
	}
	lib := power.SAED90Like()
	chip := power.Manufacture(inst.Infected, lib, power.ThreeSigmaIntra(cfg.Varsigma), cfg.ChipSeed)
	dev := NewDevice(chip, cfg.NumChains, scan.LOS)
	defer dev.Close()
	_, err = Detect(inst.Host, lib, dev, Config{
		NumChains: cfg.NumChains,
		ATPG:      cfg.ATPG,
		Varsigma:  cfg.Varsigma,
		Channel:   ChannelFused,
	})
	if err == nil {
		t.Fatal("fused channel without a delay chip must refuse to run")
	}
}

// TestFusionRowWireRoundTrip: the row (NaN AUCs included) survives the
// JSON wire bit-for-bit.
func TestFusionRowWireRoundTrip(t *testing.T) {
	row := FusionRow{
		Preset:   "drift",
		Case:     "s35932-T200",
		PowerAUC: math.NaN(),
		DelayAUC: 0.875,
		FusedAUC: 1,
		PowerROC: []ROCPoint{{Threshold: 0.1, TPR: 1, FPR: 0.5}},
	}
	b, err := json.Marshal(row)
	if err != nil {
		t.Fatal(err)
	}
	var back FusionRow
	if err := json.Unmarshal(b, &back); err != nil {
		t.Fatal(err)
	}
	if !math.IsNaN(back.PowerAUC) || back.DelayAUC != 0.875 || back.FusedAUC != 1 {
		t.Errorf("AUC columns did not round-trip: %+v", back)
	}
	if len(back.PowerROC) != 1 || back.PowerROC[0] != row.PowerROC[0] {
		t.Errorf("ROC curve did not round-trip: %+v", back.PowerROC)
	}
}
