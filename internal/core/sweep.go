package core

import (
	"superpose/internal/scan"
	"superpose/internal/sim"
)

// Sweep is the evaluator-level single-flip sweep session behind the
// adaptive flow's candidate loop: one scan.Sweeper over the golden
// netlist (nominal prediction) and one over the physical device
// (observed power), sharing a flip list. Per step the base pattern is
// simulated once on each side (Rebase); per chunk only the union fanout
// cone of the 64 flipped bits is re-evaluated and priced sparsely —
// replacing the per-candidate clone, re-pack and full-netlist launch of
// the reference path while producing bit-identical Readings.
//
// A Sweep is bound to its Evaluator's calibration, drift-compensation
// and acquisition state: MeasureChunk advances the device's reading
// stream exactly as Evaluator.MeasureBatch over the materialized
// candidate patterns would.
type Sweep struct {
	ev     *Evaluator
	cands  []CellRef
	golden *scan.Sweeper
	phys   *scan.Sweeper
	base   *scan.Pattern
	noms   []float64
	out    []Reading
}

// NewSweep builds a sweep session over the candidate flips (shared by
// every step of an adaptive run — the stimulus shape is invariant). The
// structural cone analysis happens here, once.
func (ev *Evaluator) NewSweep(cands []CellRef) (*Sweep, error) {
	flips := make([]scan.Flip, len(cands))
	for i, cr := range cands {
		flips[i] = scan.Flip{Chain: cr.Chain, Index: cr.Index}
	}
	golden, err := scan.NewSweeperKind(ev.chains, ev.mode, flips, ev.eng.Kind())
	if err != nil {
		return nil, err
	}
	phys, err := ev.dev.NewSweeper(flips)
	if err != nil {
		return nil, err
	}
	return &Sweep{ev: ev, cands: cands, golden: golden, phys: phys}, nil
}

// Close returns both sides' sweepers' pooled buffers to the shared
// pools. The Sweep must not be used afterwards; Close is idempotent.
func (s *Sweep) Close() {
	s.golden.Close()
	s.phys.Close()
}

// SetEngine switches the base-launch backend of both sides' sweepers.
// Chunk Readings are bit-identical across kinds.
func (s *Sweep) SetEngine(kind sim.EngineKind) {
	s.golden.SetKind(kind)
	s.phys.SetKind(kind)
}

// Candidates returns the swept flip list as CellRefs (owned by the
// Sweep).
func (s *Sweep) Candidates() []CellRef { return s.cands }

// NumChunks returns the number of 64-candidate chunks.
func (s *Sweep) NumChunks() int { return s.golden.NumChunks() }

// Rebase re-simulates both sides' base frames for a new base pattern.
// The pattern is captured by reference; callers must Rebase again after
// mutating it.
func (s *Sweep) Rebase(base *scan.Pattern) error {
	if err := s.golden.Rebase(base); err != nil {
		return err
	}
	if err := s.phys.Rebase(base); err != nil {
		return err
	}
	s.base = base
	return nil
}

// Advance incrementally rebases both sides onto newBase, which must
// differ from the current base in exactly the accepted flip — the cheap
// per-step transition of the adaptive climb (only the flip's chunk cone
// is re-evaluated instead of launching the full netlist twice).
func (s *Sweep) Advance(flipped CellRef, newBase *scan.Pattern) error {
	f := scan.Flip{Chain: flipped.Chain, Index: flipped.Index}
	if err := s.golden.Advance(f); err != nil {
		return err
	}
	if err := s.phys.Advance(f); err != nil {
		return err
	}
	s.base = newBase
	return nil
}

// MeasureChunk evaluates chunk c's candidates — base with one bit
// flipped per lane — and returns their Readings, bit-identical to
// Evaluator.MeasureBatch over clones of the base carrying those flips.
// The returned slice is owned by the Sweep and valid until the next
// MeasureChunk.
func (s *Sweep) MeasureChunk(c int) []Reading {
	if s.base == nil {
		panic("core: Sweep.MeasureChunk before Rebase")
	}
	ev := s.ev
	ev.maybeTrackDrift()
	flips := s.phys.ChunkFlips(c)
	ids, masks := s.phys.Run(c)
	observed := ev.dev.MeasureSweep(s.base, flips, ids, masks)
	ev.sinceRef += len(flips)

	gids, gmasks := s.golden.Run(c)
	if s.golden.Kind() == sim.EnginePPSFP {
		// The PPSFP configuration prices through the vectorized kernel;
		// the sums are bit-identical (power.TestVectorPricingBitIdentity
		// plus the exhaustive equivalence suite pin this), so the engine
		// selector changes cost only, never Readings.
		s.noms = ev.model.NominalLanesSparseVec(gids, gmasks, len(flips), s.noms)
	} else {
		s.noms = ev.model.NominalLanesSparse(gids, gmasks, len(flips), s.noms)
	}

	if cap(s.out) < len(flips) {
		s.out = make([]Reading, len(flips))
	}
	out := s.out[:len(flips)]
	for i := range flips {
		obs := observed[i] / (ev.scale * ev.driftScale)
		out[i] = Reading{
			Observed: obs,
			Nominal:  s.noms[i],
			RPD:      RPD(obs, s.noms[i]),
		}
	}
	return out
}
