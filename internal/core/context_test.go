package core

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"superpose/internal/power"
	"superpose/internal/scan"
	"superpose/internal/stats"
	"superpose/internal/trust"
)

// countdownCtx reports cancellation only after Err has been called n
// times: a deterministic way to cancel at the k-th acquisition
// checkpoint, without goroutine timing.
type countdownCtx struct {
	context.Context
	mu   sync.Mutex
	left int
}

func (c *countdownCtx) Err() error {
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.left > 0 {
		c.left--
		return nil
	}
	return context.Canceled
}

func TestMeasureBatchCancelledContext(t *testing.T) {
	dev, pats := buildAcqBench(t, 6, 5)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dev.SetContext(ctx)

	got := dev.MeasureBatch(pats)
	for i, v := range got {
		if !math.IsNaN(v) {
			t.Errorf("reading %d = %v after cancellation, want NaN", i, v)
		}
	}
	if !errors.Is(dev.Err(), context.Canceled) {
		t.Errorf("Err() = %v, want context.Canceled", dev.Err())
	}

	// The sticky error persists across calls until the context changes.
	_ = dev.MeasureBatch(pats[:1])
	if !errors.Is(dev.Err(), context.Canceled) {
		t.Errorf("Err() not sticky: %v", dev.Err())
	}

	// Clearing the context restores normal acquisition.
	dev.SetContext(nil)
	if dev.Err() != nil {
		t.Errorf("Err() = %v after SetContext(nil), want nil", dev.Err())
	}
	for i, v := range dev.MeasureBatch(pats) {
		if math.IsNaN(v) {
			t.Errorf("reading %d still NaN after clearing the context", i)
		}
	}
}

// TestMeasureBatchCancelMidAcquisition cancels between tester passes:
// the delivered readings must be all-NaN, never an aggregate over the
// passes that happened to finish before the cancellation.
func TestMeasureBatchCancelMidAcquisition(t *testing.T) {
	dev, pats := buildAcqBench(t, 6, 4)
	// Noise forces the full repeats path (the noiseless fast path takes a
	// single pass and would finish before any mid-acquisition check).
	dev.chip.SetMeasurementNoise(0.01)
	dev.SetRepeats(5)

	// Let exactly two checkpoints pass (the entry check plus one
	// between-pass check), then cancel.
	dev.SetContext(&countdownCtx{Context: context.Background(), left: 2})
	got := dev.MeasureBatch(pats)
	for i, v := range got {
		if !math.IsNaN(v) {
			t.Errorf("reading %d = %v from a mid-acquisition cancel, want NaN (no partial aggregates)", i, v)
		}
	}
	if !errors.Is(dev.Err(), context.Canceled) {
		t.Errorf("Err() = %v, want context.Canceled", dev.Err())
	}
}

func TestMeasureSweepCancelledContext(t *testing.T) {
	dev, pats := buildAcqBench(t, 6, 1)
	base := pats[0]
	flips := []scan.Flip{{Chain: 0, Index: 0}, {Chain: 0, Index: 1}, {Chain: 1, Index: 0}}
	sw, err := dev.NewSweeper(flips)
	if err != nil {
		t.Fatal(err)
	}
	if err := sw.Rebase(base); err != nil {
		t.Fatal(err)
	}
	chunkFlips := sw.ChunkFlips(0)
	ids, masks := sw.Run(0)

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	dev.SetContext(ctx)
	got := dev.MeasureSweep(base, chunkFlips, ids, masks)
	for i, v := range got {
		if !math.IsNaN(v) {
			t.Errorf("sweep lane %d = %v after cancellation, want NaN", i, v)
		}
	}
	if !errors.Is(dev.Err(), context.Canceled) {
		t.Errorf("Err() = %v, want context.Canceled", dev.Err())
	}
}

func TestAdaptiveContextCancelled(t *testing.T) {
	ev, ch := evalFixture(t)
	seed := ch.RandomPattern(stats.NewRNG(21))
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	res, err := ev.AdaptiveContext(ctx, seed, AdaptiveOptions{MaxSteps: 30})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if res == nil || len(res.Steps) == 0 {
		t.Fatal("cancelled climb must still return the partial trajectory")
	}
	if len(res.Steps) > 1 {
		t.Errorf("pre-cancelled climb took %d steps, want the seed only", len(res.Steps))
	}
}

func TestDetectContextCancelled(t *testing.T) {
	n, err := trust.Generate(trust.Params{Name: "ctxflow", PIs: 4, POs: 4, FFs: 12, Comb: 90, Levels: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	lib := power.SAED90Like()
	chip := power.Manufacture(n, lib, power.ThreeSigmaIntra(0.1), 1)
	dev := NewDevice(chip, 2, scan.LOS)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	rep, err := DetectContext(ctx, n, lib, dev, Config{NumChains: 2, Varsigma: 0.1})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if rep != nil {
		t.Error("cancelled detect must not deliver a report")
	}
}

func TestCertifyLotContextCancelled(t *testing.T) {
	n, err := trust.Generate(trust.Params{Name: "ctxlot", PIs: 4, POs: 4, FFs: 12, Comb: 90, Levels: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	lib := power.SAED90Like()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	lr, err := CertifyLotContext(ctx, n, lib, n, Config{NumChains: 2, Varsigma: 0.1},
		LotOptions{Dies: 2, Variation: power.ThreeSigmaIntra(0.1), Seed: 3})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
	if lr != nil {
		t.Error("cancelled lot must not deliver a report")
	}
}

// TestDetectProgressOrdering pins the progress contract: stages arrive
// in pipeline order and the step counters stay within their totals.
func TestDetectProgressOrdering(t *testing.T) {
	n, err := trust.Generate(trust.Params{Name: "prog", PIs: 4, POs: 4, FFs: 12, Comb: 90, Levels: 4, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	lib := power.SAED90Like()
	chip := power.Manufacture(n, lib, power.ThreeSigmaIntra(0.1), 1)
	dev := NewDevice(chip, 2, scan.LOS)

	var events []Progress
	cfg := Config{NumChains: 2, Varsigma: 0.1, MaxSeeds: 2,
		Progress: func(p Progress) { events = append(events, p) }}
	if _, err := DetectContext(context.Background(), n, lib, dev, cfg); err != nil {
		t.Fatal(err)
	}
	if len(events) == 0 {
		t.Fatal("no progress events")
	}
	rank := map[Stage]int{StageSeeds: 0, StageCalibrate: 1, StageAdaptive: 2, StagePairs: 3, StageConfirm: 4}
	last := -1
	seen := map[Stage]bool{}
	for i, ev := range events {
		r, ok := rank[ev.Stage]
		if !ok {
			t.Fatalf("event %d: unexpected stage %q", i, ev.Stage)
		}
		if r < last {
			t.Errorf("event %d: stage %q after %d — out of pipeline order", i, ev.Stage, last)
		}
		last = r
		seen[ev.Stage] = true
		if ev.Total > 0 && (ev.Step < 0 || ev.Step > ev.Total) {
			t.Errorf("event %d: step %d outside [0, %d]", i, ev.Step, ev.Total)
		}
	}
	for _, must := range []Stage{StageSeeds, StageCalibrate, StageAdaptive} {
		if !seen[must] {
			t.Errorf("stage %q never reported", must)
		}
	}
}
