package core

import (
	"strings"
	"testing"

	"superpose/internal/atpg"
	"superpose/internal/tester"
	"superpose/internal/trust"
)

func TestWriteReportSections(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run")
	}
	inst, lib, infected, _ := buildTestbench(t, trust.Case{Benchmark: "s35932", Trojan: "T200"}, 0.04, 0.15, 42)
	rep, err := Detect(inst.Host, lib, infected, Config{
		NumChains: 4, Varsigma: 0.10,
		ATPG: atpg.Options{Seed: 7, RandomPatterns: 32, MaxFaults: 40, FaultSample: 120},
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteReport(&b, rep); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"CERTIFICATION REPORT",
		"Seed stage",
		"Adaptive flow",
		"Superposition",
		"Strategic modifications",
		"Verdict",
		"TROJAN DETECTED",
		"Detection likelihood",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
	// An ideal single-shot run must not grow the acquisition section.
	if strings.Contains(out, "Measurement acquisition") {
		t.Errorf("acquisition section present on an ideal-tester run:\n%s", out)
	}
}

// TestWriteReportAcquisitionSection: a run under a tester fault model
// with the robust policy annotates its acquisition work in the report.
func TestWriteReportAcquisitionSection(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run")
	}
	inst, lib, infected, _ := buildTestbench(t, trust.Case{Benchmark: "s35932", Trojan: "T200"}, 0.04, 0.15, 42)
	tc, err := tester.Preset("spikes", 12345)
	if err != nil {
		t.Fatal(err)
	}
	infected.SetFaultModel(tester.New(tc))
	rep, err := Detect(inst.Host, lib, infected, Config{
		NumChains: 4, Varsigma: 0.10,
		ATPG:        atpg.Options{Seed: 7, RandomPatterns: 32, MaxFaults: 40, FaultSample: 120},
		Acquisition: RobustAcquisition(),
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteReport(&b, rep); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(b.String(), "Measurement acquisition") {
		t.Errorf("report missing acquisition section under tester faults:\n%s", b.String())
	}
}

func TestWriteReportPropagatesWriteError(t *testing.T) {
	rep := &Report{Varsigma: 0.1}
	if err := WriteReport(&shortWriter{}, rep); err == nil {
		t.Error("write errors must propagate")
	}
}

type shortWriter struct{ n int }

func (s *shortWriter) Write(p []byte) (int, error) {
	s.n += len(p)
	if s.n > 40 {
		return 0, errShort
	}
	return len(p), nil
}

var errShort = &shortErr{}

type shortErr struct{}

func (*shortErr) Error() string { return "short write" }
