package core

import (
	"strings"
	"testing"

	"superpose/internal/atpg"
	"superpose/internal/trust"
)

func TestWriteReportSections(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline run")
	}
	inst, lib, infected, _ := buildTestbench(t, trust.Case{Benchmark: "s35932", Trojan: "T200"}, 0.04, 0.15, 42)
	rep, err := Detect(inst.Host, lib, infected, Config{
		NumChains: 4, Varsigma: 0.10,
		ATPG: atpg.Options{Seed: 7, RandomPatterns: 32, MaxFaults: 40, FaultSample: 120},
	})
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := WriteReport(&b, rep); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	for _, want := range []string{
		"CERTIFICATION REPORT",
		"Seed stage",
		"Adaptive flow",
		"Superposition",
		"Strategic modifications",
		"Verdict",
		"TROJAN DETECTED",
		"Detection likelihood",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("report missing %q:\n%s", want, out)
		}
	}
}

func TestWriteReportPropagatesWriteError(t *testing.T) {
	rep := &Report{Varsigma: 0.1}
	if err := WriteReport(&shortWriter{}, rep); err == nil {
		t.Error("write errors must propagate")
	}
}

type shortWriter struct{ n int }

func (s *shortWriter) Write(p []byte) (int, error) {
	s.n += len(p)
	if s.n > 40 {
		return 0, errShort
	}
	return len(p), nil
}

var errShort = &shortErr{}

type shortErr struct{}

func (*shortErr) Error() string { return "short write" }
