package core

import (
	"math"
	"testing"

	"superpose/internal/atpg"
	"superpose/internal/trust"
)

func TestFigure1Demo(t *testing.T) {
	demo, err := BuildFigure1()
	if err != nil {
		t.Fatal(err)
	}
	// The ideal case of §III-C: benign activity overlaps perfectly, so the
	// golden model predicts identical power for both patterns...
	if demo.UniqueBenign != 0 {
		t.Errorf("unique benign gates = %d, want 0 (perfect overlap)", demo.UniqueBenign)
	}
	if demo.NominalA != demo.NominalB {
		t.Errorf("nominal powers differ: %v vs %v", demo.NominalA, demo.NominalB)
	}
	// ...and the observed difference is exactly the Trojan-caused energy —
	// the Trojan gates themselves plus the benign reader the payload
	// corruption toggles — exposed at full magnitude.
	if demo.TrojanEnergy <= 0 {
		t.Fatal("TPa must activate the Trojan")
	}
	if math.Abs(demo.Residual-(demo.TrojanEnergy+demo.InducedEnergy)) > 1e-9 {
		t.Errorf("residual %v != Trojan %v + induced %v",
			demo.Residual, demo.TrojanEnergy, demo.InducedEnergy)
	}
	// TPa and TPb share the same launch activity (same transitions).
	if demo.TPa.TransitionCount() != demo.TPb.TransitionCount() {
		t.Error("pair must have identical transition counts")
	}
}

func TestFigure2Rows(t *testing.T) {
	rows := Figure2Rows()
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
	wantKinds := []ModKind{IntroduceTwo, EliminateTwo, MoveTransition, MoveTransition, IntroduceOne, EliminateOne}
	wantUpdated := []string{"00100", "11111", "000011", "001111", "01111", "00000"}
	for i, r := range rows {
		if r.Kind != wantKinds[i] {
			t.Errorf("row %d (%s): kind = %v, want %v", i, r.Name, r.Kind, wantKinds[i])
		}
		if r.Updated != wantUpdated[i] {
			t.Errorf("row %d (%s): updated = %s, want %s", i, r.Name, r.Updated, wantUpdated[i])
		}
	}
}

func TestPaperTableII(t *testing.T) {
	rows := PaperTableII()
	if len(rows) != 5 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Spot-check the most discriminating cell of the printed table:
	// s38417-T100 at 25% is 94.84%.
	var t100 TableIIRow
	for _, r := range rows {
		if r.Case == "s38417-T100" {
			t100 = r
		}
	}
	if math.Abs(t100.Probabilities[4]-0.9484) > 5e-4 {
		t.Errorf("s38417-T100 @ 25%% = %v, want 0.9484", t100.Probabilities[4])
	}
	// Monotone decreasing across the columns for every row.
	for _, r := range rows {
		for i := 1; i < len(r.Probabilities); i++ {
			if r.Probabilities[i] > r.Probabilities[i-1] {
				t.Errorf("%s: probabilities not monotone", r.Case)
			}
		}
		// The paper's headline: at least 94%% everywhere, even at 25%%.
		if r.Probabilities[4] < 0.94 {
			t.Errorf("%s: %v < 94%% at 25%%", r.Case, r.Probabilities[4])
		}
	}
}

func TestRunTableICaseShape(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline experiment")
	}
	cfg := ExperimentConfig{
		Scale:    0.04,
		Varsigma: 0.10,
		ATPG:     atpg.Options{Seed: 7, RandomPatterns: 32, MaxFaults: 40, FaultSample: 120},
	}
	row, err := RunTableICase(trust.Case{Benchmark: "s35932", Trojan: "T200"}, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("row: %+v", row)
	// The paper's shape claims (§V-C): superposition lifts the signal past
	// the adaptive flow, strategic modification improves on superposition
	// alone, and the final signal clears 10%.
	if row.StrategicSRPD < 0.10 {
		t.Errorf("strategic S-RPD = %v, want >= 0.10", row.StrategicSRPD)
	}
	if row.StrategicSRPD < row.SuperSRPD {
		t.Errorf("strategic %v below superposition alone %v", row.StrategicSRPD, row.SuperSRPD)
	}
	if row.SuperSRPD <= row.ATPGRPD {
		t.Errorf("superposition %v did not magnify ATPG %v", row.SuperSRPD, row.ATPGRPD)
	}
	if row.MagOverATPG <= 1 {
		t.Errorf("magnification over ATPG = %v", row.MagOverATPG)
	}
	// TCA improves along the flow (activity concentrates on the Trojan).
	if row.StrategicTCA <= row.ATPGTCA {
		t.Errorf("TCA did not improve: %v -> %v", row.ATPGTCA, row.StrategicTCA)
	}
}

func TestRunTableIIFromRows(t *testing.T) {
	rows := []TableIRow{{Case: "x", StrategicSRPD: 0.2}}
	t2 := RunTableII(rows)
	if len(t2) != 1 || t2[0].Case != "x" {
		t.Fatal("shape")
	}
	if len(t2[0].Probabilities) != len(TableIIVarsigmas) {
		t.Fatal("columns")
	}
	if t2[0].Probabilities[0] < 0.999999 {
		t.Error("0.2 at 5% must be a near-certain detection")
	}
}
