package core

import (
	"context"
	"errors"
	"fmt"
	"math"

	"superpose/internal/atpg"
	"superpose/internal/fusion"
	"superpose/internal/netlist"
	"superpose/internal/power"
	"superpose/internal/scan"
)

// ErrUnstable marks a detection run the tester's faults defeated: the
// acquisition policy could not stabilize a single seed reading. The
// condition is transient from the caller's perspective — a retry against
// the same die may succeed once the fault window passes — which is
// exactly how the service layer classifies it.
var ErrUnstable = errors.New("core: acquisition unstable")

// Config drives the end-to-end detection pipeline.
type Config struct {
	// NumChains is the scan configuration (default 4).
	NumChains int
	// Mode is the pattern application technique; the methodology is built
	// for LOS (default). LOC is supported for the ablation study.
	Mode scan.Mode
	// SeedPatterns, when non-empty, replaces ATPG as the seed source
	// (§IV-B: "the adaptive methodology is agnostic as to the source of
	// the test pattern, provided LOS is used").
	SeedPatterns []*scan.Pattern
	// ATPG configures seed generation when SeedPatterns is empty.
	ATPG atpg.Options
	// MaxSeeds bounds how many of the strongest seed patterns get a full
	// adaptive run (default 3).
	MaxSeeds int
	// Adaptive and Strategic tune the two search stages.
	Adaptive  AdaptiveOptions
	Strategic StrategicOptions
	// Varsigma is the assumed intra-die variation magnitude (3σ_intra)
	// used for the final verdict: a signal is a detection when it exceeds
	// what ς can explain. Default 0.25, the paper's most extreme case.
	Varsigma float64
	// ZThreshold, when positive, adds a second detection criterion: the
	// final residual in σ_intra-propagated standard deviations of the
	// pair's unique activity. Disabled by default — the adaptive climb
	// actively concentrates activity on the die's most PV-positive gates,
	// so on a clean die the mined maximum z runs well above blind
	// extreme-value estimates (≈5–6σ observed); the paper's ς bound on
	// the ratio metric is the safe verdict. The z value is still reported
	// for diagnostics.
	ZThreshold float64
	// MaxPairs is how many of the top flagged pairs (by significance)
	// receive the full strategic-modification treatment (default 3).
	MaxPairs int
	// Acquisition, when non-zero, replaces the device's measurement-
	// acquisition policy before the run (see AcquisitionPolicy,
	// NaiveAcquisition, RobustAcquisition). The zero value leaves the
	// device's configured policy untouched.
	Acquisition AcquisitionPolicy
	// Channel selects the side-channel observable(s): power (default,
	// the paper's method), delay (transition-delay launches over the
	// same LOS stimuli), or fused (both, joined through Fusion). The
	// delay and fused channels require a delay chip on the device
	// (Device.SetDelayChip; CertifyLot mounts one automatically).
	Channel Channel
	// DelayThreshold is the delay channel's verdict bound on the worst
	// calibrated path residual (default: Varsigma — the same "what can
	// process variation explain" budget, conservatively applied to the
	// relative delay residual).
	DelayThreshold float64
	// Fusion, when trained, supplies the learned fused operating point
	// (see fusion.Train over clean-control observations). Required for a
	// fused verdict; with a nil or untrained calibration the fused score
	// stays NaN and FusedDetected false.
	Fusion *fusion.Calibration
	// Progress, when non-nil, receives per-phase progress events
	// (seeds, calibration, adaptive climb, pair analysis, confirmation).
	// Reporting never alters the flow; see ProgressFunc for the
	// concurrency contract.
	Progress ProgressFunc
}

func (c Config) withDefaults() Config {
	if c.NumChains == 0 {
		c.NumChains = 4
	}
	if c.MaxSeeds == 0 {
		c.MaxSeeds = 3
	}
	if c.Varsigma == 0 {
		c.Varsigma = 0.25
	}
	if c.MaxPairs == 0 {
		c.MaxPairs = 3
	}
	if c.Channel == "" {
		c.Channel = ChannelPower
	}
	if c.DelayThreshold == 0 {
		c.DelayThreshold = c.Varsigma
	}
	return c
}

// Report is the outcome of a certification run on one device. It is a
// wire type: the json tags define the certification service's response
// schema, and the custom marshaler keeps the NaN-capable verdict fields
// (an unstable die's FinalSRPD) JSON-safe (see wire.go).
type Report struct {
	// Seed stage.
	ATPGSummary string        `json:"atpg_summary,omitempty"`
	SeedReading Reading       `json:"seed_reading"` // the strongest seed pattern's reading
	SeedPattern *scan.Pattern `json:"seed_pattern,omitempty"`

	// Adaptive stage (best across seeds).
	Adaptive        *AdaptiveResult `json:"adaptive,omitempty"`
	AdaptiveReading Reading         `json:"adaptive_reading"`

	// Superposition stage. HasPair is false when no suspicious drop was
	// ever flagged — the expected outcome on a Trojan-free device.
	HasPair       bool            `json:"has_pair"`
	Superposition PairAnalysis    `json:"superposition"` // the flagged pair, as found (§IV-C)
	Strategic     StrategicResult `json:"strategic"`
	// Confirmed is the verdict pair re-measured fresh: the strategic
	// winner was *selected* as a maximum over measured states, so its
	// recorded reading carries selection bias — and under tester faults a
	// single inflated reading can be that maximum. The verdict uses the
	// median-magnitude confirmation instead; on an ideal tester every
	// re-measurement is identical and Confirmed equals Strategic.Final.
	Confirmed PairAnalysis `json:"confirmed"`

	// Acquisition summarizes this run's measurement-acquisition work:
	// passes, retries, samples dropped by the tester or rejected as
	// outliers, and readings that never stabilized. UnstableSeeds counts
	// seed patterns excluded from ranking because their reading came
	// back NaN; UnstablePairs counts flagged pairs excluded from the
	// verdict for the same reason — the graceful-degradation path under
	// severe tester faults.
	Acquisition   AcquisitionStats `json:"acquisition"`
	UnstableSeeds int              `json:"unstable_seeds"`
	UnstablePairs int              `json:"unstable_pairs"`

	// Verdict. Detected is the power channel's verdict — the paper's
	// method, reported identically regardless of Channel; the delay and
	// fused channels carry their own verdicts below (ChannelDetected
	// selects among them).
	FinalSRPD float64 `json:"final_srpd"`
	// FinalZ is the final pair's residual in benign standard deviations
	// (Significance / σ_intra with σ_intra = Varsigma/3).
	FinalZ   float64 `json:"final_z"`
	Varsigma float64 `json:"varsigma"`
	Detected bool    `json:"detected"`

	// Channel echoes the configured measurement channel; Delay holds the
	// delay channel's result when it was measured (Channel delay or
	// fused). FusedScore/FusedDetected carry the learned-calibration
	// verdict (FusedScore is NaN unless Channel is fused and a trained
	// fusion.Calibration was supplied).
	Channel       Channel      `json:"channel,omitempty"`
	Delay         *DelayResult `json:"delay,omitempty"`
	FusedScore    float64      `json:"fused_score"`
	FusedDetected bool         `json:"fused_detected"`
}

// DelayResult is the delay side channel's contribution to a Report: the
// worst calibrated sensitized-path residual over the run's LOS stimuli
// (seeds plus the adaptive climb's flagged pairs — the same patterns,
// reused as transition-delay launches). It is a wire type; Score and
// Scale go NaN when no pattern stabilized (see wire.go).
type DelayResult struct {
	// Score is the worst calibrated relative path-delay residual; NaN
	// when the delay channel never stabilized.
	Score float64 `json:"score"`
	// Scale is the calibrated inter-die delay factor (median
	// measured/nominal) — the delay analogue of the power calibration.
	Scale float64 `json:"scale"`
	// Patterns counts stimuli contributing to the score; Unstable counts
	// stimuli whose measurement the acquisition layer could not recover.
	Patterns int `json:"patterns"`
	Unstable int `json:"unstable"`
	// Threshold is the verdict bound applied to Score.
	Threshold float64 `json:"threshold"`
	Detected  bool    `json:"detected"`
}

// ChannelDetected returns the verdict of the requested channel: power's
// Eq. 3 bound, delay's residual threshold, or the fused learned
// operating point. An unmeasured channel is never a detection.
func (r *Report) ChannelDetected(ch Channel) bool {
	switch ch {
	case ChannelDelay:
		return r.Delay != nil && r.Delay.Detected
	case ChannelFused:
		return r.FusedDetected
	}
	return r.Detected
}

// DetectionProbabilityAt evaluates the Eq. 3 bound for the report's final
// signal at a given 3σ_intra.
func (r *Report) DetectionProbabilityAt(varsigma float64) float64 {
	return DetectionProbability(r.FinalSRPD, varsigma)
}

// Summary renders a human-readable digest.
func (r *Report) Summary() string {
	verdict := "CLEAN (no signal beyond process variation)"
	if r.Detected {
		verdict = fmt.Sprintf("TROJAN DETECTED (|S-RPD| %.4f vs benign bound %.4f, z=%.1f)",
			abs(r.FinalSRPD), r.Varsigma, r.FinalZ)
	}
	s := fmt.Sprintf("seed RPD %.5f; adaptive RPD %.5f", r.SeedReading.RPD, r.AdaptiveReading.RPD)
	if r.HasPair {
		s += fmt.Sprintf("; superposition S-RPD %.5f; strategic S-RPD %.5f",
			r.Superposition.SRPD, r.Strategic.Final.SRPD)
	}
	return s + "; " + verdict
}

// Detect runs the full pipeline of the paper against one device:
//
//  1. obtain LOS TDF seed patterns (ATPG on the golden netlist),
//  2. rank seeds by suspicious signal and run the adaptive
//     transition-reduction flow on the strongest ones,
//  3. when a suspiciously large adjacent-pattern drop appears, analyze the
//     pair through superposition,
//  4. align the pair further with the strategic modification suite,
//  5. compare the final S-RPD against what intra-die variation can explain.
func Detect(golden *netlist.Netlist, lib *power.Library, dev *Device, cfg Config) (*Report, error) {
	return DetectContext(context.Background(), golden, lib, dev, cfg)
}

// DetectContext is Detect under a run context. The context is bound to
// the device's acquisition (see Device.SetContext) and checked between
// pipeline phases, between adaptive climb rounds and between pair
// analyses, so a cancellation or deadline expiry aborts the run
// mid-climb — returning ctx's error, never a report built from partial
// measurements. With a background context it is bit-identical to Detect.
func DetectContext(ctx context.Context, golden *netlist.Netlist, lib *power.Library, dev *Device, cfg Config) (*Report, error) {
	cfg = cfg.withDefaults()
	if cfg.Channel.UsesDelay() && dev.DelayChip() == nil {
		return nil, fmt.Errorf("core: channel %q requires a delay chip on the device (SetDelayChip)", cfg.Channel)
	}
	if cfg.Acquisition != (AcquisitionPolicy{}) {
		dev.SetAcquisition(cfg.Acquisition)
	}
	dev.SetContext(ctx)
	acqStart := dev.AcquisitionStats()
	ev := NewEvaluator(golden, lib, dev, cfg.NumChains, cfg.Mode)
	defer ev.Close() // the workbench is per-Detect; its pooled buffers recycle across dies

	seeds := cfg.SeedPatterns
	rep := &Report{Varsigma: cfg.Varsigma, Channel: cfg.Channel, FusedScore: math.NaN()}
	if len(seeds) == 0 {
		cfg.Progress.emit(StageSeeds, 0, 0, "generating ATPG seed patterns")
		gen, err := atpg.Generate(ev.Chains(), cfg.ATPG)
		if err != nil {
			return nil, fmt.Errorf("core: seed generation: %w", err)
		}
		if len(gen.Patterns) == 0 {
			return nil, fmt.Errorf("core: ATPG produced no seed patterns")
		}
		seeds = gen.Patterns
		rep.ATPGSummary = gen.String()
	}
	cfg.Progress.emit(StageSeeds, len(seeds), len(seeds), "seed patterns ready")
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Per-die characterization: estimate the global (inter-die) power
	// scale from the seed set so the self-referencing analysis only faces
	// intra-die variation, as §V-D assumes. With a drift window
	// configured, the first seed becomes the reference pattern whose
	// periodic re-measurement tracks slow tester drift on top of the
	// one-time calibration.
	cfg.Progress.emit(StageCalibrate, 0, 0, "per-die power-scale calibration")
	ev.Calibrate(seeds)
	if dev.Acquisition().DriftWindow > 0 {
		ev.SetDriftReference(seeds[0])
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Rank seeds by RPD. Seeds whose reading the acquisition layer could
	// not stabilize (NaN) are excluded from ranking and annotated in the
	// report rather than silently steering it.
	type ranked struct {
		p *scan.Pattern
		r Reading
	}
	var rankedSeeds []ranked
	for i, r := range ev.MeasureBatch(seeds) {
		if math.IsNaN(r.RPD) || math.IsNaN(r.Observed) {
			rep.UnstableSeeds++
			continue
		}
		rankedSeeds = append(rankedSeeds, ranked{seeds[i], r})
	}
	if len(rankedSeeds) == 0 {
		// Cancellation mid-ranking floods the batch with NaN readings;
		// report the abort, not a tester-instability diagnosis. The same
		// goes for an injected acquisition fault held sticky on the device.
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		if err := ev.dev.Err(); err != nil {
			return nil, fmt.Errorf("core: acquisition aborted: %w", err)
		}
		return nil, fmt.Errorf("%w: no seed pattern produced a stable reading (%d unstable; tester faults beyond the acquisition policy's reach)", ErrUnstable, rep.UnstableSeeds)
	}
	for i := 1; i < len(rankedSeeds); i++ { // insertion sort by RPD desc
		for j := i; j > 0 && rankedSeeds[j].r.RPD > rankedSeeds[j-1].r.RPD; j-- {
			rankedSeeds[j], rankedSeeds[j-1] = rankedSeeds[j-1], rankedSeeds[j]
		}
	}
	rep.SeedPattern = rankedSeeds[0].p
	rep.SeedReading = rankedSeeds[0].r

	// Adaptive runs on the strongest seeds.
	nSeeds := cfg.MaxSeeds
	if nSeeds > len(rankedSeeds) {
		nSeeds = len(rankedSeeds)
	}
	var flagged []PairCandidate
	aopt := cfg.Adaptive
	if aopt.Progress == nil {
		aopt.Progress = cfg.Progress
	}
	for i := 0; i < nSeeds; i++ {
		cfg.Progress.emit(StageAdaptive, i, nSeeds, "adaptive climb from ranked seed")
		ar, err := ev.AdaptiveContext(ctx, rankedSeeds[i].p, aopt)
		if err != nil {
			return nil, err
		}
		best := ar.Steps[ar.Best]
		if rep.Adaptive == nil || best.Reading.RPD > rep.AdaptiveReading.RPD {
			rep.Adaptive = ar
			rep.AdaptiveReading = best.Reading
		}
		flagged = append(flagged, ar.Pairs...)
	}
	// Rank flagged pairs by significance and give the strongest few the
	// full strategic treatment; a genuine Trojan residual is magnified as
	// the alignment walk shrinks the unique activity, while a mined
	// process-variation residual shrinks together with the unique gates
	// that produced it.
	for i := 1; i < len(flagged); i++ { // insertion sort, descending
		for j := i; j > 0 && flagged[j].Significance > flagged[j-1].Significance; j-- {
			flagged[j], flagged[j-1] = flagged[j-1], flagged[j]
		}
	}
	nPairs := cfg.MaxPairs
	if nPairs > len(flagged) {
		nPairs = len(flagged)
	}

	var finalSig float64
	if nPairs > 0 {
		kept := false
		for i := 0; i < nPairs; i++ {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			cfg.Progress.emit(StagePairs, i, nPairs, "superposition + strategic pair analysis")
			pc := flagged[i]
			sup := ev.AnalyzePair(pc.A, pc.B)
			st := ev.StrategicModify(pc.A, pc.B, pc.Critical, cfg.Strategic)
			// A pair whose strategic walk never produced a stable
			// reading is excluded from the verdict and annotated,
			// rather than letting its NaN poison the comparison (NaN
			// wins every `>` by making it false).
			if math.IsNaN(st.Final.SRPD) {
				rep.UnstablePairs++
				continue
			}
			if !kept || abs(st.Final.SRPD) > abs(rep.Strategic.Final.SRPD) {
				rep.Superposition = sup
				rep.Strategic = st
				kept = true
			}
		}
		if kept {
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			cfg.Progress.emit(StageConfirm, 0, 0, "verdict-pair confirmation")
			rep.HasPair = true
			rep.Confirmed = confirmPair(ev, rep.Strategic.Final)
			rep.FinalSRPD = rep.Confirmed.SRPD
			finalSig = rep.Confirmed.Significance()
			if s := rep.Superposition.Significance(); s > finalSig {
				finalSig = s
			}
		} else {
			// Every flagged pair was unstable: the die cannot be
			// certified under this tester. Deliver NaN so lot
			// accounting reports it as unstable instead of clean.
			rep.FinalSRPD = math.NaN()
		}
	} else {
		// No pair: fall back to the best adjacent pair of the adaptive
		// trajectory so the verdict still has a superposition reading.
		if len(rep.Adaptive.Steps) >= 2 {
			bi := rep.Adaptive.Best
			if bi == 0 {
				bi = 1
			}
			rep.Superposition = ev.AnalyzePair(rep.Adaptive.Steps[bi-1].Pattern, rep.Adaptive.Steps[bi].Pattern)
			rep.Confirmed = confirmPair(ev, rep.Superposition)
			rep.FinalSRPD = rep.Confirmed.SRPD
			finalSig = rep.Confirmed.Significance()
		}
	}

	// A cancellation during the final measurements must not deliver a
	// verdict mined from NaN-degraded readings.
	if err := ctx.Err(); err != nil {
		return nil, err
	}

	// Dual-criterion verdict: the Eq. 3 bound on the ratio metric, or a
	// residual too many benign standard deviations out for this pair's
	// actual variation exposure.
	sigmaIntra := cfg.Varsigma / 3
	if sigmaIntra > 0 {
		rep.FinalZ = finalSig / sigmaIntra
	}
	rep.Detected = abs(rep.FinalSRPD) > MaxBenignSRPD(cfg.Varsigma) ||
		(cfg.ZThreshold > 0 && rep.FinalZ > cfg.ZThreshold)

	// Delay channel: the same LOS stimuli, reapplied as transition-delay
	// launches — the seeds plus the adaptive climb's flagged pairs, whose
	// low-activity alignment makes a trigger-extended path a large
	// fraction of the measured delay. No pattern re-generation.
	if cfg.Channel.UsesDelay() {
		cfg.Progress.emit(StageDelay, 0, 0, "transition-delay channel measurement")
		stimuli := make([]*scan.Pattern, 0, len(seeds)+2*nPairs+2)
		stimuli = append(stimuli, seeds...)
		for i := 0; i < nPairs; i++ {
			stimuli = append(stimuli, flagged[i].A, flagged[i].B)
		}
		if rep.HasPair {
			stimuli = append(stimuli, rep.Strategic.Final.A, rep.Strategic.Final.B)
		}
		dr := ev.MeasureDelayChannel(stimuli)
		if math.IsNaN(dr.Score) {
			// An all-NaN delay sweep means the acquisition aborted
			// (cancellation or an injected fault held sticky on the
			// device) — report the abort, not a silently clean channel.
			if err := ctx.Err(); err != nil {
				return nil, err
			}
			if err := dev.Err(); err != nil {
				return nil, fmt.Errorf("core: delay acquisition aborted: %w", err)
			}
			// Otherwise the tester's delay faults defeated every stimulus:
			// degrade gracefully — NaN score, never a verdict.
		}
		rep.Delay = &DelayResult{
			Score:     dr.Score,
			Scale:     dr.Scale,
			Patterns:  dr.Used,
			Unstable:  dr.Unstable,
			Threshold: cfg.DelayThreshold,
			Detected:  !math.IsNaN(dr.Score) && dr.Score > cfg.DelayThreshold,
		}
	}

	// Fused verdict: the learned operating point over the channel pair.
	if cfg.Channel == ChannelFused && cfg.Fusion != nil && cfg.Fusion.Enabled() {
		obs := fusion.Observation{Power: abs(rep.FinalSRPD), Delay: rep.Delay.Score}
		rep.FusedScore = cfg.Fusion.Score(obs)
		rep.FusedDetected = cfg.Fusion.Detect(obs)
	}

	rep.Acquisition = dev.AcquisitionStats().Sub(acqStart)
	return rep, nil
}

// confirmPair re-measures a verdict pair fresh and returns the analysis
// of median |S-RPD| among the stable re-measurements, falling back to
// the recorded state when none re-measures stably. With an even number
// of stable readings the smaller-magnitude middle is chosen — the
// conservative verdict. On an ideal tester every re-measurement is
// bit-identical, so confirmation never changes a clean-path verdict.
func confirmPair(ev *Evaluator, fin PairAnalysis) PairAnalysis {
	var stable []PairAnalysis
	for k := 0; k < 3; k++ {
		if pa := ev.AnalyzePair(fin.A, fin.B); !math.IsNaN(pa.SRPD) {
			stable = append(stable, pa)
		}
	}
	if len(stable) == 0 {
		return fin
	}
	for i := 1; i < len(stable); i++ { // insertion sort by |S-RPD|
		for j := i; j > 0 && abs(stable[j].SRPD) < abs(stable[j-1].SRPD); j-- {
			stable[j], stable[j-1] = stable[j-1], stable[j]
		}
	}
	return stable[(len(stable)-1)/2]
}
