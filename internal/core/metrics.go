// Package core implements the paper's contribution: self-referencing test
// pattern superposition for power side-channel hardware Trojan detection.
//
// The package provides the evaluation metrics (RPD of Eq. 1, S-RPD of
// Eq. 2, the TCA activity ratio, and the Eq. 3 detection-probability
// bound), the adaptive transition-reduction flow of §IV-B, the
// superposition pair analysis of §IV-C, the strategic test pattern
// modifications of §IV-D (Fig. 2), and the end-to-end Detector pipeline
// that ties them together.
package core

import (
	"fmt"
	"sort"

	"superpose/internal/stats"
)

// RPD computes the Relative Power Difference of Eq. 1: the deviation of an
// observed power reading from its pre-silicon nominal expectation.
func RPD(observed, nominal float64) float64 {
	if nominal == 0 {
		return 0
	}
	return (observed - nominal) / nominal
}

// SplitToggles partitions two toggle sets into the common part and the two
// unique parts (Gcmn, Gaunq, Gbunq of §V-A). Inputs need not be sorted;
// outputs are sorted.
func SplitToggles(a, b []int) (common, aUnique, bUnique []int) {
	as := append([]int(nil), a...)
	bs := append([]int(nil), b...)
	sort.Ints(as)
	sort.Ints(bs)
	i, j := 0, 0
	for i < len(as) && j < len(bs) {
		switch {
		case as[i] == bs[j]:
			common = append(common, as[i])
			i++
			j++
		case as[i] < bs[j]:
			aUnique = append(aUnique, as[i])
			i++
		default:
			bUnique = append(bUnique, bs[j])
			j++
		}
	}
	aUnique = append(aUnique, as[i:]...)
	bUnique = append(bUnique, bs[j:]...)
	return common, aUnique, bUnique
}

// SRPD computes the Super-RPD of Eq. 2 for a pattern pair: the observed
// power difference minus the nominal power difference, normalized by the
// sum of the nominal powers of the uniquely activated gate sets. The
// denominator choice is the paper's footnote 4: the process-variation
// exposure of the differential reading scales with the total unique
// power, not with the difference.
func SRPD(obsA, obsB, nomA, nomB, nomAUnique, nomBUnique float64) float64 {
	den := nomAUnique + nomBUnique
	if den == 0 {
		return 0
	}
	return ((obsA - obsB) - (nomA - nomB)) / den
}

// TCA is the Trojan-to-Circuit Activity ratio of [Salmani & Tehranipoor,
// TIFS 2012]: the fraction of switching activity that belongs to Trojan
// gates. It requires ground truth and is an evaluation metric only — the
// detection flow never sees it.
func TCA(toggles []int, isTrojan func(int) bool) float64 {
	if len(toggles) == 0 {
		return 0
	}
	t := 0
	for _, id := range toggles {
		if isTrojan(id) {
			t++
		}
	}
	return float64(t) / float64(len(toggles))
}

// PairTCA is the differential-activity TCA of a superposition pair: the
// Trojan share of the gates activated by exactly one of the two patterns
// (the common activity cancels, so only unique activity carries signal).
func PairTCA(togglesA, togglesB []int, isTrojan func(int) bool) float64 {
	_, aU, bU := SplitToggles(togglesA, togglesB)
	u := append(aU, bU...)
	return TCA(u, isTrojan)
}

// DetectionProbability evaluates the Eq. 3 bound: given an achieved S-RPD
// and an intra-die variation magnitude expressed as the paper's
// 3σ_intra = ς convention, the benign hypothesis can only produce
// |S-RPD| ≤ k·σ_intra with probability Φ(k); the achieved signal is
// therefore a reliable detection with probability Φ(3·SRPD/ς).
func DetectionProbability(srpd, varsigma float64) float64 {
	if varsigma <= 0 {
		if srpd > 0 {
			return 1
		}
		return 0
	}
	if srpd < 0 {
		srpd = -srpd
	}
	return stats.Phi(3 * srpd / varsigma)
}

// FormatProbability renders a detection probability the way Table II
// does: probabilities at or above 99.995 print as "> 99.99%".
func FormatProbability(p float64) string {
	if p >= 0.99995 {
		return "> 99.99%"
	}
	return fmt.Sprintf("%.2f%%", 100*p)
}

// MaxBenignSRPD returns the largest S-RPD magnitude that benign intra-die
// variation can explain, per the Eq. 3 derivation: ς itself (at the 3σ
// point of the distribution).
func MaxBenignSRPD(varsigma float64) float64 { return varsigma }
