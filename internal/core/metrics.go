// Package core implements the paper's contribution: self-referencing test
// pattern superposition for power side-channel hardware Trojan detection.
//
// The package provides the evaluation metrics (RPD of Eq. 1, S-RPD of
// Eq. 2, the TCA activity ratio, and the Eq. 3 detection-probability
// bound), the adaptive transition-reduction flow of §IV-B, the
// superposition pair analysis of §IV-C, the strategic test pattern
// modifications of §IV-D (Fig. 2), and the end-to-end Detector pipeline
// that ties them together.
package core

import (
	"fmt"
	"sort"

	"superpose/internal/stats"
)

// RPD computes the Relative Power Difference of Eq. 1: the deviation of an
// observed power reading from its pre-silicon nominal expectation.
func RPD(observed, nominal float64) float64 {
	if nominal == 0 {
		return 0
	}
	return (observed - nominal) / nominal
}

// SplitToggles partitions two toggle sets into the common part and the two
// unique parts (Gcmn, Gaunq, Gbunq of §V-A). Inputs need not be sorted;
// outputs are sorted.
func SplitToggles(a, b []int) (common, aUnique, bUnique []int) {
	common, aUnique, bUnique, _ = splitTogglesInto(a, b, nil)
	return common, aUnique, bUnique
}

// splitTogglesInto is SplitToggles with a caller-owned backing array,
// grown only when too small. The pair-analysis paths thread an
// Evaluator-owned buffer through it: the strategic climb splits one
// toggle pair per candidate modification, and at 10⁵–10⁶ gates the
// per-call garbage of the exported variant dominates certify-time RSS.
// The outputs alias buf and are valid only until the next call with it.
func splitTogglesInto(a, b, buf []int) (common, aUnique, bUnique, scratch []int) {
	// The hot callers hand toggle sets straight from the simulator, which
	// emits gate IDs in ascending order — only copy-and-sort an input
	// that actually needs it.
	if !sort.IntsAreSorted(a) {
		as := append([]int(nil), a...)
		sort.Ints(as)
		a = as
	}
	if !sort.IntsAreSorted(b) {
		bs := append([]int(nil), b...)
		sort.Ints(bs)
		b = bs
	}
	// One backing array carved into the three outputs; the three-index
	// slices cap each region so a caller's append cannot clobber its
	// neighbour.
	maxC := len(a)
	if len(b) < maxC {
		maxC = len(b)
	}
	need := maxC + len(a) + len(b)
	if cap(buf) < need {
		buf = make([]int, need)
	}
	buf = buf[:need]
	common = buf[0:0:maxC]
	aUnique = buf[maxC : maxC : maxC+len(a)]
	bUnique = buf[maxC+len(a) : maxC+len(a) : len(buf)]
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] == b[j]:
			common = append(common, a[i])
			i++
			j++
		case a[i] < b[j]:
			aUnique = append(aUnique, a[i])
			i++
		default:
			bUnique = append(bUnique, b[j])
			j++
		}
	}
	aUnique = append(aUnique, a[i:]...)
	bUnique = append(bUnique, b[j:]...)
	return common, aUnique, bUnique, buf
}

// SRPD computes the Super-RPD of Eq. 2 for a pattern pair: the observed
// power difference minus the nominal power difference, normalized by the
// sum of the nominal powers of the uniquely activated gate sets. The
// denominator choice is the paper's footnote 4: the process-variation
// exposure of the differential reading scales with the total unique
// power, not with the difference.
func SRPD(obsA, obsB, nomA, nomB, nomAUnique, nomBUnique float64) float64 {
	den := nomAUnique + nomBUnique
	if den == 0 {
		return 0
	}
	return ((obsA - obsB) - (nomA - nomB)) / den
}

// TCA is the Trojan-to-Circuit Activity ratio of [Salmani & Tehranipoor,
// TIFS 2012]: the fraction of switching activity that belongs to Trojan
// gates. It requires ground truth and is an evaluation metric only — the
// detection flow never sees it.
func TCA(toggles []int, isTrojan func(int) bool) float64 {
	if len(toggles) == 0 {
		return 0
	}
	t := 0
	for _, id := range toggles {
		if isTrojan(id) {
			t++
		}
	}
	return float64(t) / float64(len(toggles))
}

// PairTCA is the differential-activity TCA of a superposition pair: the
// Trojan share of the gates activated by exactly one of the two patterns
// (the common activity cancels, so only unique activity carries signal).
func PairTCA(togglesA, togglesB []int, isTrojan func(int) bool) float64 {
	_, aU, bU := SplitToggles(togglesA, togglesB)
	u := append(aU, bU...)
	return TCA(u, isTrojan)
}

// DetectionProbability evaluates the Eq. 3 bound: given an achieved S-RPD
// and an intra-die variation magnitude expressed as the paper's
// 3σ_intra = ς convention, the benign hypothesis can only produce
// |S-RPD| ≤ k·σ_intra with probability Φ(k); the achieved signal is
// therefore a reliable detection with probability Φ(3·SRPD/ς).
func DetectionProbability(srpd, varsigma float64) float64 {
	if varsigma <= 0 {
		if srpd > 0 {
			return 1
		}
		return 0
	}
	if srpd < 0 {
		srpd = -srpd
	}
	return stats.Phi(3 * srpd / varsigma)
}

// FormatProbability renders a detection probability the way Table II
// does: probabilities at or above 99.995 print as "> 99.99%".
func FormatProbability(p float64) string {
	if p >= 0.99995 {
		return "> 99.99%"
	}
	return fmt.Sprintf("%.2f%%", 100*p)
}

// MaxBenignSRPD returns the largest S-RPD magnitude that benign intra-die
// variation can explain, per the Eq. 3 derivation: ς itself (at the 3σ
// point of the distribution).
func MaxBenignSRPD(varsigma float64) float64 { return varsigma }
