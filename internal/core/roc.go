package core

import (
	"math"
	"sort"

	"superpose/internal/netlist"
	"superpose/internal/power"
)

// ROCPoint is one verdict-threshold operating point over a pair of
// score populations. It is a wire type (json tags + NaN-safe marshaling
// in wire.go) so ROC tables ship through internal/netio.
type ROCPoint struct {
	Threshold float64 `json:"threshold"` // verdict bound on the score
	TPR       float64 `json:"tpr"`       // fraction of infected dies flagged
	FPR       float64 `json:"fpr"`       // fraction of clean dies flagged
}

// ROCFromScores sweeps a verdict threshold over two scalar score
// populations — higher score = more suspicious — producing the receiver
// operating characteristic of any scoring rule: |S-RPD| magnitudes,
// delay residuals, fused scores. NaN scores (unstable dies) stay in the
// denominators but can never be flagged at any threshold, matching the
// flow's graceful-degradation rule that an unstable die is never a
// detection. Returns nil when no finite score exists on either side.
func ROCFromScores(infected, clean []float64) []ROCPoint {
	var thresholds []float64
	for _, s := range append(append([]float64(nil), infected...), clean...) {
		if !math.IsNaN(s) {
			thresholds = append(thresholds, s)
		}
	}
	if len(thresholds) == 0 {
		return nil
	}
	sort.Float64s(thresholds)

	rate := func(scores []float64, thr float64) float64 {
		if len(scores) == 0 {
			return 0
		}
		n := 0
		for _, s := range scores {
			if s > thr { // NaN fails every comparison: never flagged
				n++
			}
		}
		return float64(n) / float64(len(scores))
	}

	var out []ROCPoint
	// One point just below every observed score plus a closing point.
	prev := math.Inf(-1)
	for _, thr := range thresholds {
		t := thr - 1e-12
		if t == prev {
			continue
		}
		prev = t
		out = append(out, ROCPoint{Threshold: t, TPR: rate(infected, t), FPR: rate(clean, t)})
	}
	last := thresholds[len(thresholds)-1]
	out = append(out, ROCPoint{Threshold: last, TPR: rate(infected, last), FPR: rate(clean, last)})
	return out
}

// AUC integrates the area under an ROC curve by the trapezoid rule,
// anchored at (0,0) and (1,1). 1.0 is perfect separation, 0.5 chance.
// Returns NaN for an empty curve.
func AUC(points []ROCPoint) float64 {
	if len(points) == 0 {
		return math.NaN()
	}
	pts := append([]ROCPoint(nil), points...)
	pts = append(pts, ROCPoint{FPR: 0, TPR: 0}, ROCPoint{FPR: 1, TPR: 1})
	sort.Slice(pts, func(i, j int) bool {
		if pts[i].FPR != pts[j].FPR {
			return pts[i].FPR < pts[j].FPR
		}
		return pts[i].TPR < pts[j].TPR
	})
	var area float64
	for i := 1; i < len(pts); i++ {
		area += (pts[i].FPR - pts[i-1].FPR) * (pts[i].TPR + pts[i-1].TPR) / 2
	}
	return area
}

// ROC sweeps the verdict threshold over the observed |S-RPD| values of an
// infected and a clean lot, producing the receiver operating
// characteristic of the method at the lots' process conditions. This is
// an extension beyond the paper's evaluation (which fixes the bound at ς);
// it makes the safety margin visible: a wide gap between the lots shows as
// a long plateau of (TPR=1, FPR=0) thresholds.
func ROC(infected, clean *LotReport) []ROCPoint {
	return ROCFromScores(finalMags(infected), finalMags(clean))
}

func finalMags(lr *LotReport) []float64 {
	out := make([]float64, 0, len(lr.Dies))
	for _, d := range lr.Dies {
		out = append(out, d.FinalMag)
	}
	return out
}

// SeparationMargin returns the gap between the weakest infected die and
// the strongest clean die: positive means a threshold exists with perfect
// separation (TPR 1, FPR 0), and its width is the tolerance to
// miscalibrated ς.
func SeparationMargin(infected, clean *LotReport) float64 {
	if len(infected.Dies) == 0 || len(clean.Dies) == 0 {
		return 0
	}
	minInf := infected.Dies[0].FinalMag
	for _, d := range infected.Dies {
		if d.FinalMag < minInf {
			minInf = d.FinalMag
		}
	}
	maxClean := clean.Dies[0].FinalMag
	for _, d := range clean.Dies {
		if d.FinalMag > maxClean {
			maxClean = d.FinalMag
		}
	}
	return minInf - maxClean
}

// RunROC certifies an infected and a clean lot of the same design and
// returns the ROC together with the lots.
func RunROC(golden *netlist.Netlist, lib *power.Library, infectedNetlist *netlist.Netlist,
	cfg Config, lot LotOptions) (roc []ROCPoint, infected, clean *LotReport, err error) {
	cfg, err = WithSharedSeeds(golden, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	infected, err = CertifyLot(golden, lib, infectedNetlist, cfg, lot)
	if err != nil {
		return nil, nil, nil, err
	}
	clean, err = CertifyLot(golden, lib, golden, cfg, lot)
	if err != nil {
		return nil, nil, nil, err
	}
	return ROC(infected, clean), infected, clean, nil
}
