package core

import (
	"sort"

	"superpose/internal/netlist"
	"superpose/internal/power"
)

// ROCPoint is one verdict-threshold operating point over a pair of lots.
type ROCPoint struct {
	Threshold float64 // |S-RPD| verdict bound
	TPR       float64 // fraction of infected dies flagged
	FPR       float64 // fraction of clean dies flagged
}

// ROC sweeps the verdict threshold over the observed |S-RPD| values of an
// infected and a clean lot, producing the receiver operating
// characteristic of the method at the lots' process conditions. This is
// an extension beyond the paper's evaluation (which fixes the bound at ς);
// it makes the safety margin visible: a wide gap between the lots shows as
// a long plateau of (TPR=1, FPR=0) thresholds.
func ROC(infected, clean *LotReport) []ROCPoint {
	var thresholds []float64
	for _, d := range infected.Dies {
		thresholds = append(thresholds, d.FinalMag)
	}
	for _, d := range clean.Dies {
		thresholds = append(thresholds, d.FinalMag)
	}
	sort.Float64s(thresholds)

	rate := func(lr *LotReport, thr float64) float64 {
		if len(lr.Dies) == 0 {
			return 0
		}
		n := 0
		for _, d := range lr.Dies {
			if d.FinalMag > thr {
				n++
			}
		}
		return float64(n) / float64(len(lr.Dies))
	}

	var out []ROCPoint
	// One point just below every observed magnitude plus a closing point.
	prev := -1.0
	for _, thr := range thresholds {
		t := thr - 1e-12
		if t == prev {
			continue
		}
		prev = t
		out = append(out, ROCPoint{Threshold: t, TPR: rate(infected, t), FPR: rate(clean, t)})
	}
	last := thresholds[len(thresholds)-1]
	out = append(out, ROCPoint{Threshold: last, TPR: rate(infected, last), FPR: rate(clean, last)})
	return out
}

// SeparationMargin returns the gap between the weakest infected die and
// the strongest clean die: positive means a threshold exists with perfect
// separation (TPR 1, FPR 0), and its width is the tolerance to
// miscalibrated ς.
func SeparationMargin(infected, clean *LotReport) float64 {
	if len(infected.Dies) == 0 || len(clean.Dies) == 0 {
		return 0
	}
	minInf := infected.Dies[0].FinalMag
	for _, d := range infected.Dies {
		if d.FinalMag < minInf {
			minInf = d.FinalMag
		}
	}
	maxClean := clean.Dies[0].FinalMag
	for _, d := range clean.Dies {
		if d.FinalMag > maxClean {
			maxClean = d.FinalMag
		}
	}
	return minInf - maxClean
}

// RunROC certifies an infected and a clean lot of the same design and
// returns the ROC together with the lots.
func RunROC(golden *netlist.Netlist, lib *power.Library, infectedNetlist *netlist.Netlist,
	cfg Config, lot LotOptions) (roc []ROCPoint, infected, clean *LotReport, err error) {
	cfg, err = WithSharedSeeds(golden, cfg)
	if err != nil {
		return nil, nil, nil, err
	}
	infected, err = CertifyLot(golden, lib, infectedNetlist, cfg, lot)
	if err != nil {
		return nil, nil, nil, err
	}
	clean, err = CertifyLot(golden, lib, golden, cfg, lot)
	if err != nil {
		return nil, nil, nil, err
	}
	return ROC(infected, clean), infected, clean, nil
}
