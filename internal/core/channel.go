package core

import "fmt"

// Channel selects which side-channel observable(s) drive a
// certification run. The power channel is the paper's method and the
// default; the delay channel reuses the same LOS stimuli as
// transition-delay launches (internal/delay); fused combines both
// through a learned calibration (internal/fusion).
type Channel string

// The supported measurement channels.
const (
	ChannelPower Channel = "power"
	ChannelDelay Channel = "delay"
	ChannelFused Channel = "fused"
)

// ParseChannel resolves a channel name; the empty string means power
// (backward compatible with every pre-fusion config and job spec).
func ParseChannel(s string) (Channel, error) {
	switch Channel(s) {
	case "", ChannelPower:
		return ChannelPower, nil
	case ChannelDelay:
		return ChannelDelay, nil
	case ChannelFused:
		return ChannelFused, nil
	}
	return "", fmt.Errorf("core: unknown channel %q (have power, delay, fused)", s)
}

// UsesDelay reports whether the channel needs the delay measurement
// path (a delay chip on the device).
func (c Channel) UsesDelay() bool { return c == ChannelDelay || c == ChannelFused }

// String returns the channel name, never empty.
func (c Channel) String() string {
	if c == "" {
		return string(ChannelPower)
	}
	return string(c)
}
