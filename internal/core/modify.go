package core

import (
	"fmt"
	"math"

	"superpose/internal/scan"
)

// ModKind classifies a strategic modification per the suite of Fig. 2.
type ModKind uint8

const (
	// EliminateTwo removes two transitions (11011 -> 11111).
	EliminateTwo ModKind = iota
	// IntroduceTwo creates two transitions (00000 -> 00100).
	IntroduceTwo
	// MoveTransition relocates a transition launch point by one cell
	// (000111 -> 000011 or 001111).
	MoveTransition
	// EliminateOne removes a single transition at a chain end
	// (00001 -> 00000).
	EliminateOne
	// IntroduceOne creates a single transition at a chain end
	// (11111 -> 01111).
	IntroduceOne
	// SensitizePI flips a primary input: no launch activity changes, only
	// side-input sensitization of the combinational logic.
	SensitizePI
	// NoEffect leaves the transition count and positions unchanged
	// (single-cell chains).
	NoEffect
)

// String names the modification kind.
func (k ModKind) String() string {
	switch k {
	case EliminateTwo:
		return "eliminate-two"
	case IntroduceTwo:
		return "introduce-two"
	case MoveTransition:
		return "move-transition"
	case EliminateOne:
		return "eliminate-one"
	case IntroduceOne:
		return "introduce-one"
	case SensitizePI:
		return "sensitize-pi"
	case NoEffect:
		return "no-effect"
	default:
		return fmt.Sprintf("ModKind(%d)", uint8(k))
	}
}

// ClassifyFlip reports which Fig. 2 modification flipping bit (chain, idx)
// performs on the pattern. Primary-input flips (chain == PIChain) classify
// as SensitizePI.
func ClassifyFlip(p *scan.Pattern, chain, idx int) ModKind {
	if chain == PIChain {
		return SensitizePI
	}
	n := len(p.Scan[chain])
	delta := transitionDelta(p, chain, idx)
	interior := idx > 0 && idx < n-1
	switch {
	case delta == -2:
		return EliminateTwo
	case delta == 2:
		return IntroduceTwo
	case delta == -1:
		return EliminateOne
	case delta == 1:
		return IntroduceOne
	case interior:
		return MoveTransition
	default:
		return NoEffect
	}
}

// AnalyzePairs evaluates many pattern pairs through superposition,
// batching 32 pairs (64 lanes) per simulator launch.
func (ev *Evaluator) AnalyzePairs(pairs [][2]*scan.Pattern) []PairAnalysis {
	out := make([]PairAnalysis, len(pairs))
	for start := 0; start < len(pairs); start += 32 {
		end := start + 32
		if end > len(pairs) {
			end = len(pairs)
		}
		group := pairs[start:end]
		flat := make([]*scan.Pattern, 0, 2*len(group))
		for _, pr := range group {
			flat = append(flat, pr[0], pr[1])
		}
		// MeasureBatch's nominal pricing already launched exactly this
		// ≤64-lane batch on the golden engine, and nothing since touched
		// it (drift tracking re-measures on the device engine only), so
		// the frames behind TogglesAll are still the flat batch's.
		readings := ev.MeasureBatch(flat)
		sets, tbuf := ev.eng.TogglesAllBuf(len(flat), ev.tsetBuf)
		ev.tsetBuf = tbuf
		for i, pr := range group {
			ta := sets[2*i]
			tb := sets[2*i+1]
			common, aU, bU, sbuf := splitTogglesInto(ta, tb, ev.splitBuf)
			ev.splitBuf = sbuf
			pa := PairAnalysis{
				A: pr[0], B: pr[1],
				ObservedA: readings[2*i].Observed, ObservedB: readings[2*i+1].Observed,
				NominalA: readings[2*i].Nominal, NominalB: readings[2*i+1].Nominal,
				CommonCount:  len(common),
				AUniqueCount: len(aU), BUniqueCount: len(bU),
				NominalAUnique: ev.model.Nominal(aU),
				NominalBUnique: ev.model.Nominal(bU),
				UniqueEnergySq: ev.model.NominalSumSquares(aU) + ev.model.NominalSumSquares(bU),
			}
			pa.SRPD = SRPD(pa.ObservedA, pa.ObservedB, pa.NominalA, pa.NominalB,
				pa.NominalAUnique, pa.NominalBUnique)
			out[start+i] = pa
		}
	}
	return out
}

// AppliedMod records one accepted strategic modification.
type AppliedMod struct {
	Cell       CellRef `json:"cell"`
	Kind       ModKind `json:"kind"`
	SRPDBefore float64 `json:"srpd_before"`
	SRPDAfter  float64 `json:"srpd_after"`
}

// StrategicOptions tunes the §IV-D search.
type StrategicOptions struct {
	// MaxRounds bounds the greedy hill climb (default 32).
	MaxRounds int
	// MinGain is the minimum |S-RPD| improvement to accept a modification
	// (default 1e-6, i.e. accept any strict improvement).
	MinGain float64
}

func (o StrategicOptions) withDefaults() StrategicOptions {
	if o.MaxRounds == 0 {
		o.MaxRounds = 32
	}
	if o.MinGain == 0 {
		o.MinGain = 1e-6
	}
	return o
}

// StrategicResult is the outcome of the §IV-D alignment search.
type StrategicResult struct {
	Initial PairAnalysis `json:"initial"`
	Final   PairAnalysis `json:"final"`
	Applied []AppliedMod `json:"applied,omitempty"`
}

// StrategicModify improves a superposition pair with the Fig. 2
// modification suite. The pair is expected to differ in exactly one scan
// bit — the critical bit whose difference toggles the Trojan activation
// (§IV-D: "maintaining the status of this altered bit will be key") — and
// that bit is held fixed while every other scan bit is a candidate for a
// joint flip in both patterns. Joint flips preserve the pair's critical
// difference while eliminating, introducing or moving transitions shared
// by both patterns to increase their activity overlap.
//
// The search objective reflects the §IV-D goal of alignment: each round
// accepts the joint flip that most shrinks the pair's unique nominal
// activity (the Eq. 2 denominator — a noise-free, golden-model quantity),
// walking the pair toward maximal overlap. The returned Final state is
// the best |S-RPD| observed anywhere along that walk. Because acceptance
// is driven purely by the deterministic denominator, the climb cannot
// harvest measurement-noise maxima on a clean device beyond the handful
// of states it visits, while a genuine Trojan residual is magnified
// mechanically as the denominator falls — and states where an alignment
// move accidentally blocks the Trojan's activation path are simply not
// the maximum.
func (ev *Evaluator) StrategicModify(a, b *scan.Pattern, critical CellRef, opt StrategicOptions) StrategicResult {
	opt = opt.withDefaults()
	res := StrategicResult{Initial: ev.AnalyzePair(a, b)}
	curA, curB := a.Clone(), b.Clone()
	cur := res.Initial
	best := res.Initial

	for round := 0; round < opt.MaxRounds; round++ {
		var cells []CellRef
		for c := range curA.Scan {
			for j := range curA.Scan[c] {
				if c == critical.Chain && j == critical.Index {
					continue
				}
				cells = append(cells, CellRef{c, j})
			}
		}
		for i := range curA.PI {
			if critical.IsPI() && i == critical.Index {
				continue
			}
			cells = append(cells, CellRef{PIChain, i})
		}
		cands := make([][2]*scan.Pattern, len(cells))
		for i, cell := range cells {
			qa, qb := curA.Clone(), curB.Clone()
			applyFlip(qa, cell)
			applyFlip(qb, cell)
			cands[i] = [2]*scan.Pattern{qa, qb}
		}
		if len(cands) == 0 {
			break
		}
		analyses := ev.AnalyzePairs(cands)
		curDen := cur.NominalAUnique + cur.NominalBUnique
		// Acceptance set: candidates that strictly improve alignment
		// (smaller unique nominal power). Among them, follow the one whose
		// superposition signal survives best — an alignment move that
		// happens to block the suspicious activation path would show a
		// collapsed residual and is steered around.
		bestIdx := -1
		bestMag := -1.0
		for i, pa := range analyses {
			den := pa.NominalAUnique + pa.NominalBUnique
			if den == 0 || den >= curDen-1e-9 {
				continue
			}
			if mag := abs(pa.SRPD); mag > bestMag {
				bestIdx, bestMag = i, mag
			}
		}
		if bestIdx < 0 {
			break // no alignment improvement possible
		}
		cell := cells[bestIdx]
		res.Applied = append(res.Applied, AppliedMod{
			Cell:       cell,
			Kind:       ClassifyFlip(curA, cell.Chain, cell.Index),
			SRPDBefore: cur.SRPD,
			SRPDAfter:  analyses[bestIdx].SRPD,
		})
		curA, curB = cands[bestIdx][0], cands[bestIdx][1]
		cur = analyses[bestIdx]
		// NaN-aware max: an unstable Initial (NaN SRPD) must not pin
		// `best` forever — any stable state along the walk replaces it.
		if math.IsNaN(best.SRPD) || abs(cur.SRPD) > abs(best.SRPD) {
			best = cur
		}
	}
	res.Final = best
	return res
}
