package core

import (
	"math"
	"testing"

	"superpose/internal/parallel"
	"superpose/internal/power"
	"superpose/internal/scan"
	"superpose/internal/stats"
	"superpose/internal/tester"
	"superpose/internal/trust"
)

// The sweep equivalence suite: the single-flip sweep engine must be
// bit-identical to the legacy clone-and-measure candidate loop — same
// Readings, same accepted trajectory, same flagged pairs, same
// acquisition accounting, under every measurement regime the flow
// supports. Comparisons go through parallel.Diff (NaN-stable,
// pointer-following), so degraded readings and pattern contents are
// covered too.

// sweepEquivConfig is one measurement regime of the equivalence matrix.
type sweepEquivConfig struct {
	name       string
	mode       scan.Mode
	infected   bool
	noiseSigma float64
	regime     string // tester.Preset name; "" = ideal tester
	robust     bool   // RobustAcquisition instead of Naive
	repeats    int    // >0: SetRepeats on a naive policy
	drift      bool   // enable drift compensation on the evaluator
	calibrate  bool
}

func sweepEquivMatrix() []sweepEquivConfig {
	return []sweepEquivConfig{
		{name: "los-clean-noiseless", mode: scan.LOS, infected: true, calibrate: true},
		{name: "loc-clean-noiseless", mode: scan.LOC, infected: true, calibrate: true},
		{name: "los-goldenchip", mode: scan.LOS, infected: false},
		{name: "los-noise-repeats", mode: scan.LOS, infected: true,
			noiseSigma: 0.02, repeats: 5, calibrate: true},
		{name: "loc-noise-repeats", mode: scan.LOC, infected: true,
			noiseSigma: 0.02, repeats: 3},
		{name: "los-combined-robust", mode: scan.LOS, infected: true,
			noiseSigma: 0.01, regime: "combined", robust: true, calibrate: true},
		{name: "los-combined-robust-drift", mode: scan.LOS, infected: true,
			noiseSigma: 0.01, regime: "combined", robust: true, drift: true, calibrate: true},
		{name: "los-spikes-naive", mode: scan.LOS, infected: true,
			noiseSigma: 0.02, regime: "spikes", calibrate: true},
	}
}

// sweepEquivRun executes one full Adaptive climb under a regime on a
// freshly built device (measurement consumes chip-noise and tester-fault
// streams, so each run needs its own device with identical seeds) and
// returns the result plus the acquisition accounting.
func sweepEquivRun(t testing.TB, cfg sweepEquivConfig, legacy bool) (*AdaptiveResult, AcquisitionStats, tester.Stats) {
	t.Helper()
	inst, err := trust.Build(trust.Case{Benchmark: "s35932", Trojan: "T200"}, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	lib := power.SAED90Like()
	physical := inst.Infected
	if !cfg.infected {
		physical = inst.Host
	}
	chip := power.Manufacture(physical, lib, power.ThreeSigmaIntra(0.15), 42)
	if cfg.noiseSigma > 0 {
		chip.SetMeasurementNoise(cfg.noiseSigma)
	}
	dev := NewDevice(chip, 4, cfg.mode)
	if cfg.robust {
		dev.SetAcquisition(RobustAcquisition())
	}
	if cfg.repeats > 0 {
		dev.SetRepeats(cfg.repeats)
	}
	if cfg.regime != "" {
		tc, err := tester.Preset(cfg.regime, 7)
		if err != nil {
			t.Fatal(err)
		}
		dev.SetFaultModel(tester.New(tc))
	}
	ev := NewEvaluator(inst.Host, lib, dev, 4, cfg.mode)
	rng := stats.NewRNG(17)
	seed := ev.Chains().RandomPattern(rng)
	if cfg.calibrate {
		cal := []*scan.Pattern{seed, ev.Chains().RandomPattern(rng)}
		ev.Calibrate(cal)
	}
	if cfg.drift {
		ev.SetDriftReference(ev.Chains().RandomPattern(rng))
	}
	ar := ev.Adaptive(seed, AdaptiveOptions{
		MaxSteps: 3, ScreenTop: 4, DropThreshold: 1e-6, LegacyMeasure: legacy,
	})
	var ts tester.Stats
	if fm := dev.FaultModel(); fm != nil {
		ts = fm.Stats()
	}
	return ar, dev.AcquisitionStats(), ts
}

// TestAdaptiveSweepMatchesLegacy is the bit-identity contract of the
// sweep engine, across launch modes, tester fault regimes, acquisition
// policies, drift compensation and a clean-chip control.
func TestAdaptiveSweepMatchesLegacy(t *testing.T) {
	if testing.Short() {
		t.Skip("full equivalence matrix")
	}
	for _, cfg := range sweepEquivMatrix() {
		cfg := cfg
		t.Run(cfg.name, func(t *testing.T) {
			ref, refAcq, refTS := sweepEquivRun(t, cfg, true)
			got, gotAcq, gotTS := sweepEquivRun(t, cfg, false)
			if d := parallel.Diff(got, ref); d != "" {
				t.Errorf("sweep result deviates from legacy at %s", d)
			}
			if gotAcq != refAcq {
				t.Errorf("acquisition accounting deviates:\n  legacy %+v\n  sweep  %+v", refAcq, gotAcq)
			}
			if gotTS != refTS {
				t.Errorf("tester fault accounting deviates:\n  legacy %+v\n  sweep  %+v", refTS, gotTS)
			}
			if len(ref.Steps) == 0 {
				t.Fatal("reference run produced no steps")
			}
		})
	}
}

// TestAdaptiveSweepMatchesLegacyRandomized is the fuzz-style guard: tiny
// random circuits, random chain counts, modes, seeds and noise — every
// draw must keep the two candidate-measurement paths bit-identical.
func TestAdaptiveSweepMatchesLegacyRandomized(t *testing.T) {
	rng := stats.NewRNG(0xf11e5)
	for trial := 0; trial < 8; trial++ {
		params := trust.Params{
			Name:   "sweepfuzz",
			PIs:    2 + int(rng.Uint64()%5),
			POs:    3,
			FFs:    6 + int(rng.Uint64()%12),
			Comb:   40 + int(rng.Uint64()%80),
			Levels: 3 + int(rng.Uint64()%3),
			Seed:   rng.Uint64(),
		}
		n, err := trust.Generate(params)
		if err != nil {
			t.Fatal(err)
		}
		mode := scan.LOS
		if rng.Uint64()%2 == 0 {
			mode = scan.LOC
		}
		chains := 1 + int(rng.Uint64()%3)
		chipSeed := rng.Uint64()
		noise := 0.0
		if rng.Uint64()%2 == 0 {
			noise = 0.03
		}
		patSeed := rng.Uint64()

		run := func(legacy bool) (*AdaptiveResult, AcquisitionStats) {
			lib := power.SAED90Like()
			chip := power.Manufacture(n, lib, power.ThreeSigmaIntra(0.12), chipSeed)
			if noise > 0 {
				chip.SetMeasurementNoise(noise)
			}
			dev := NewDevice(chip, chains, mode)
			if noise > 0 {
				dev.SetRepeats(3)
			}
			ev := NewEvaluator(n, lib, dev, chains, mode)
			seed := ev.Chains().RandomPattern(stats.NewRNG(patSeed))
			ar := ev.Adaptive(seed, AdaptiveOptions{
				MaxSteps: 2, ScreenTop: 3, DropThreshold: 1e-6, LegacyMeasure: legacy,
			})
			return ar, dev.AcquisitionStats()
		}
		ref, refAcq := run(true)
		got, gotAcq := run(false)
		if d := parallel.Diff(got, ref); d != "" {
			t.Fatalf("trial %d (%+v mode=%v chains=%d noise=%v): deviates at %s",
				trial, params, mode, chains, noise, d)
		}
		if gotAcq != refAcq {
			t.Fatalf("trial %d: acquisition accounting deviates:\n  legacy %+v\n  sweep  %+v",
				trial, refAcq, gotAcq)
		}
	}
}

// TestTopIndicesSkipsNaN pins the screen-stage repair: residuals of
// unstabilized readings (NaN) must never be selected — previously a NaN
// was picked first and pinned, poisoning the whole screen.
func TestTopIndicesSkipsNaN(t *testing.T) {
	nan := math.NaN()
	got := topIndices([]float64{nan, 2, nan, 3, 1}, 3)
	want := []int{3, 1, 4}
	if len(got) != len(want) {
		t.Fatalf("topIndices = %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("topIndices = %v, want %v", got, want)
		}
	}
	if got := topIndices([]float64{nan, nan}, 2); len(got) != 0 {
		t.Errorf("all-NaN input selected %v", got)
	}
	if got := topIndices(nil, 3); len(got) != 0 {
		t.Errorf("empty input selected %v", got)
	}
	// Ties keep ascending-index order, matching the selection loop the
	// insertion sort replaced.
	got = topIndices([]float64{1, 2, 2, 2, 0}, 3)
	want = []int{1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("tie order = %v, want %v", got, want)
		}
	}
}
