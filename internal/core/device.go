package core

import (
	"superpose/internal/logic"
	"superpose/internal/netlist"
	"superpose/internal/power"
	"superpose/internal/scan"
)

// Device is the IC-under-certification sitting on the tester. Applying a
// batch of LOS patterns yields one power reading per pattern — nothing
// else about the physical die is observable to the detection flow.
//
// Internally the device simulates the *physical* netlist (which may carry
// a Trojan the defender's golden model lacks) and prices the launch
// activity on the chip's process-variation-afflicted gates. The ground
// truth accessors are clearly marked evaluation-only.
type Device struct {
	physical *netlist.Netlist
	eng      *scan.Engine
	chip     *power.Chip
	mode     scan.Mode
	repeats  int
	masks    []logic.Word // scratch
}

// NewDevice mounts a chip built over the physical netlist. numChains must
// match the scan configuration the defender uses on the golden model; the
// scan cells of both netlists must agree (Trojan insertion preserves
// them).
func NewDevice(chip *power.Chip, numChains int, mode scan.Mode) *Device {
	physical := chip.Netlist()
	return newDevice(chip, scan.Configure(physical, numChains), mode)
}

// NewDeviceFromChains mounts a chip using an explicit scan configuration
// (typically one built on the golden netlist, e.g. by
// scan.ReorderByConnectivity, transplanted via its cell order — flip-flop
// IDs agree between golden and infected netlists).
func NewDeviceFromChains(chip *power.Chip, goldenChains *scan.Chains, mode scan.Mode) (*Device, error) {
	ch, err := scan.FromOrder(chip.Netlist(), goldenChains.Order())
	if err != nil {
		return nil, err
	}
	return newDevice(chip, ch, mode), nil
}

func newDevice(chip *power.Chip, ch *scan.Chains, mode scan.Mode) *Device {
	return &Device{
		physical: chip.Netlist(),
		eng:      scan.NewEngine(ch),
		chip:     chip,
		mode:     mode,
		repeats:  1,
	}
}

// SetRepeats makes every reading the average of k pattern applications —
// standard tester practice to suppress measurement noise (process
// variation, being fixed per die, is unaffected). k < 1 is clamped to 1.
func (d *Device) SetRepeats(k int) {
	if k < 1 {
		k = 1
	}
	d.repeats = k
}

// MeasureBatch applies up to 64 patterns and returns the power readings.
func (d *Device) MeasureBatch(pats []*scan.Pattern) []float64 {
	d.eng.Launch(pats, d.mode)
	d.masks = d.eng.ToggleMasks(d.masks)
	out := d.chip.MeasureLanes(d.masks, len(pats))
	for r := 1; r < d.repeats; r++ {
		for i, v := range d.chip.MeasureLanes(d.masks, len(pats)) {
			out[i] += v
		}
	}
	if d.repeats > 1 {
		for i := range out {
			out[i] /= float64(d.repeats)
		}
	}
	return out
}

// Measure applies a single pattern.
func (d *Device) Measure(p *scan.Pattern) float64 {
	return d.MeasureBatch([]*scan.Pattern{p})[0]
}

// GroundTruthToggles returns the physical toggle set of a pattern
// (infected-netlist gate IDs). EVALUATION ONLY: a real tester cannot
// observe per-gate activity; the metrics harness uses this to compute TCA
// against the inserted Trojan's ground truth.
func (d *Device) GroundTruthToggles(p *scan.Pattern) []int {
	d.eng.Launch([]*scan.Pattern{p}, d.mode)
	return d.eng.Toggles(0)
}

// PhysicalNetlist exposes the physical netlist. EVALUATION ONLY.
func (d *Device) PhysicalNetlist() *netlist.Netlist { return d.physical }
