package core

import (
	"context"
	"math"

	"superpose/internal/delay"
	"superpose/internal/failpoint"
	"superpose/internal/logic"
	"superpose/internal/netlist"
	"superpose/internal/power"
	"superpose/internal/scan"
	"superpose/internal/sim"
	"superpose/internal/stats"
	"superpose/internal/tester"
	"superpose/internal/timing"
)

// Device is the IC-under-certification sitting on the tester. Applying a
// batch of LOS patterns yields one power reading per pattern — nothing
// else about the physical die is observable to the detection flow.
//
// Internally the device simulates the *physical* netlist (which may carry
// a Trojan the defender's golden model lacks) and prices the launch
// activity on the chip's process-variation-afflicted gates. The ground
// truth accessors are clearly marked evaluation-only.
//
// Between the chip and the flow sits the measurement-acquisition layer:
// an optional tester fault model (internal/tester) perturbs the raw
// reading stream, and the configured AcquisitionPolicy decides how many
// samples to take per pattern, which to reject, and how to aggregate the
// survivors. A reading the policy cannot stabilize is delivered as NaN
// and the flow degrades gracefully around it.
type Device struct {
	physical *netlist.Netlist
	eng      *scan.Engine
	chip     *power.Chip
	mode     scan.Mode
	policy   AcquisitionPolicy
	faults   *tester.FaultModel
	acq      AcquisitionStats
	masks    []logic.Word // scratch
	sweepRaw []float64    // scratch for sparse sweep pricing

	// Delay measurement path (SetDelayChip): the die's timing reality
	// plus a pooled walker over the physical netlist that turns a
	// launch's toggle set into the tester-visible sensitized-path delay.
	// delayRaw/delayTog are per-chunk scratch.
	dchip    *delay.Chip
	dwalker  *timing.PathWalker
	delayRaw []float64
	delayTog []int

	// Run context (see SetContext): a cancelled context makes every
	// subsequent acquisition deliver NaN readings instead of partial
	// aggregates, with the cause held sticky in ctxErr until the next
	// SetContext.
	ctx    context.Context
	ctxErr error

	// Stuck-guard state: the last raw reading seen, the identity of the
	// stimulus it was taken from, and whether it was flagged as a latch
	// repeat. The run spans sweep and batch boundaries, as a stuck
	// window does.
	prevRaw     float64
	prevKey     readingKey
	prevSuspect bool
}

// readingKey identifies the stimulus behind one raw reading for the
// stuck-latch guard. Batch measurements are identified by the pattern
// pointer (repeat applications of the same *Pattern are legitimate
// identical readings); sweep lanes are identified by the base pattern
// plus the flipped bit, so two lanes of a sweep — or a sweep lane and a
// batch pattern — always count as different stimuli, exactly as the
// materialized clones of the reference path do.
type readingKey struct {
	pat          *scan.Pattern
	chain, index int
	sweep        bool
}

// NewDevice mounts a chip built over the physical netlist. numChains must
// match the scan configuration the defender uses on the golden model; the
// scan cells of both netlists must agree (Trojan insertion preserves
// them).
func NewDevice(chip *power.Chip, numChains int, mode scan.Mode) *Device {
	physical := chip.Netlist()
	return newDevice(chip, scan.Configure(physical, numChains), mode)
}

// NewDeviceFromChains mounts a chip using an explicit scan configuration
// (typically one built on the golden netlist, e.g. by
// scan.ReorderByConnectivity, transplanted via its cell order — flip-flop
// IDs agree between golden and infected netlists).
func NewDeviceFromChains(chip *power.Chip, goldenChains *scan.Chains, mode scan.Mode) (*Device, error) {
	ch, err := scan.FromOrder(chip.Netlist(), goldenChains.Order())
	if err != nil {
		return nil, err
	}
	return newDevice(chip, ch, mode), nil
}

func newDevice(chip *power.Chip, ch *scan.Chains, mode scan.Mode) *Device {
	return &Device{
		physical: chip.Netlist(),
		eng:      scan.NewEngine(ch),
		chip:     chip,
		mode:     mode,
		policy:   NaiveAcquisition(),
		prevRaw:  math.NaN(), // never matches the first reading
	}
}

// SetEngine selects the device-side simulation backend (PPSFP over the
// SoA netlist core, or the scalar reference path). Readings are
// bit-identical across kinds — the engine only changes how the physical
// launch activity is computed, never what it is.
func (d *Device) SetEngine(kind sim.EngineKind) { d.eng.SetKind(kind) }

// Close returns the device's pooled simulation buffers to the shared
// pools. The Device must not be used afterwards; Close is idempotent.
func (d *Device) Close() {
	d.eng.Close()
	if d.dwalker != nil {
		d.dwalker.Release()
		d.dwalker = nil
	}
}

// SetDelayChip mounts the die's delay-channel reality (nil unmounts it).
// The chip must be manufactured over the same physical netlist as the
// power chip; a walker over that netlist is pooled with the device.
// Mounting the delay channel perturbs nothing on the power path: power
// readings, fault realizations and stuck-guard state stay bit-identical
// to a device that never measures delay.
func (d *Device) SetDelayChip(c *delay.Chip) {
	d.dchip = c
	if d.dwalker != nil {
		d.dwalker.Release()
		d.dwalker = nil
	}
	if c != nil {
		d.dwalker = timing.NewPathWalker(d.physical)
	}
}

// DelayChip returns the mounted delay-channel chip (nil when the device
// measures power only).
func (d *Device) DelayChip() *delay.Chip { return d.dchip }

// Engine returns the resolved device-side simulation backend.
func (d *Device) Engine() sim.EngineKind { return d.eng.Kind() }

// SetRepeats makes every reading the aggregate of k pattern applications —
// standard tester practice to suppress measurement noise (process
// variation, being fixed per die, is unaffected). k < 1 is clamped to 1.
// It is a shorthand for adjusting only the Repeats of the acquisition
// policy.
func (d *Device) SetRepeats(k int) {
	if k < 1 {
		k = 1
	}
	d.policy.Repeats = k
}

// SetAcquisition replaces the measurement-acquisition policy.
func (d *Device) SetAcquisition(p AcquisitionPolicy) { d.policy = p }

// Acquisition returns the current acquisition policy.
func (d *Device) Acquisition() AcquisitionPolicy { return d.policy }

// SetContext binds the device's acquisition to a run context: once ctx
// is cancelled (or its deadline expires), every subsequent measurement —
// batch or sweep — delivers NaN readings rather than values aggregated
// from however many tester passes happened to finish, and Err reports
// the cause. The mid-acquisition check sits between tester passes, so a
// cancelled job never receives a reading built from a partial sample
// set. A nil ctx restores the unbound (background) behavior and clears
// the sticky error.
func (d *Device) SetContext(ctx context.Context) {
	d.ctx = ctx
	d.ctxErr = nil
}

// Err returns the context cancellation that aborted an acquisition on
// this device, or nil. The error is sticky until the next SetContext.
func (d *Device) Err() error { return d.ctxErr }

// cancelled checks the run context, recording and returning its error.
func (d *Device) cancelled() error {
	if d.ctxErr != nil {
		return d.ctxErr
	}
	if d.ctx == nil {
		return nil
	}
	d.ctxErr = d.ctx.Err()
	return d.ctxErr
}

// nanReadings is the all-lanes-unstable result of a cancelled
// acquisition: NaN per lane, counted as unstable, never partial data.
func (d *Device) nanReadings(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = math.NaN()
	}
	d.acq.Readings += uint64(n)
	d.acq.Unstable += uint64(n)
	return out
}

// SetFaultModel interposes a tester fault model on the raw reading
// stream (nil restores the ideal tester).
func (d *Device) SetFaultModel(fm *tester.FaultModel) { d.faults = fm }

// FaultModel returns the interposed tester fault model (nil when ideal).
func (d *Device) FaultModel() *tester.FaultModel { return d.faults }

// AcquisitionStats returns the cumulative acquisition counters.
func (d *Device) AcquisitionStats() AcquisitionStats { return d.acq }

// MeasureBatch applies a set of patterns and returns one power reading
// per pattern, acquired under the configured policy. Any batch size is
// accepted; the engine's 64-lane launches are chunked internally. A
// reading the policy could not stabilize is NaN, as is every reading
// taken after the run context (SetContext) was cancelled — check Err to
// distinguish cancellation from tester instability.
func (d *Device) MeasureBatch(pats []*scan.Pattern) []float64 {
	out := make([]float64, 0, len(pats))
	for start := 0; start < len(pats); start += 64 {
		end := start + 64
		if end > len(pats) {
			end = len(pats)
		}
		out = append(out, d.measureChunk(pats[start:end])...)
	}
	return out
}

// measureChunk acquires readings for 1..64 patterns (one launch).
func (d *Device) measureChunk(pats []*scan.Pattern) []float64 {
	if _, _, err := d.eng.Launch(pats, d.mode); err != nil {
		// MeasureBatch chunks into 1..64-pattern batches by construction.
		panic(err.Error())
	}
	d.masks = d.eng.ToggleMasks(d.masks)
	return d.acquire(len(pats),
		func() []float64 { return d.chip.MeasureLanes(d.masks, len(pats)) },
		func(i int) readingKey { return readingKey{pat: pats[i]} })
}

// acqChannel parameterizes the acquisition loop per measurement
// channel: the chaos failpoint site, the tester fault transform on the
// raw stream (nil for an ideal tester), whether a single pass is exact
// (no chip noise, no faults), and whether the stuck-latch guard
// participates. The power channel guards; the delay channel does not —
// a quantizing TDC legitimately repeats codes, and more importantly the
// guard's run state belongs to the power stream: the delay channel must
// never advance it (cross-channel identity contract).
type acqChannel struct {
	site     string
	apply    func(float64) float64
	exact    bool
	useGuard bool
}

// acquire runs the acquisition policy for the power channel. price
// performs one tester pass — it must return n raw lane readings and
// draw any chip measurement noise afresh per call — and key identifies
// lane i's stimulus for the stuck-latch guard. Both the batch path
// (dense toggle masks of materialized patterns) and the single-flip
// sweep path (sparse masks of virtual flip lanes) funnel through here,
// so the two acquire readings with bit-identical policy behavior.
func (d *Device) acquire(n int, price func() []float64, key func(lane int) readingKey) []float64 {
	var apply func(float64) float64
	if d.faults != nil {
		apply = d.faults.Apply
	}
	return d.acquireChannel(n, price, key, acqChannel{
		site:     "core/acquire",
		apply:    apply,
		exact:    d.chip.NoiseSigma() == 0 && d.faults == nil,
		useGuard: true,
	})
}

// acquireChannel runs the measurement-acquisition policy over one chunk
// of n lanes of one channel — repeats, MAD outlier rejection, spread
// gate, retry budget and aggregation are channel-agnostic; the channel
// spec supplies what differs (see acqChannel). The delay channel gets
// the identical robust treatment the power channel hardened in PR 5,
// including the run-context contract: a cancelled context yields NaN
// lanes and a sticky Err, never partially-aggregated readings.
func (d *Device) acquireChannel(n int, price func() []float64, key func(lane int) readingKey, ch acqChannel) []float64 {
	// A cancelled run context aborts the acquisition before the first
	// tester pass: the caller gets NaN readings and Err() the cause.
	if d.cancelled() != nil {
		return d.nanReadings(n)
	}

	// Chaos hook: an injected acquisition fault aborts exactly like a
	// cancellation — NaN readings, cause sticky in ctxErr — so the flow
	// above exercises its abort path without a real tester outage.
	if err := failpoint.Inject(ch.site); err != nil {
		d.ctxErr = err
		return d.nanReadings(n)
	}

	// Fast path: a noiseless chip behind an ideal tester returns the
	// identical value on every repeat, so one sweep is exact regardless
	// of the configured repeat count.
	if ch.exact {
		d.acq.Passes++
		d.acq.Raw += uint64(n)
		d.acq.Readings += uint64(n)
		return price()
	}

	p := d.policy.withDefaults()
	samples := make([][]float64, n)

	// One sweep reads every lane of the batch once, in lane order, so
	// the fault model's reading index advances identically for identical
	// batch sequences — the acquisition layer stays bit-reproducible.
	// record filters which lanes keep their sample (retry sweeps only
	// top up deficient lanes; the tester still reads all of them).
	sweep := func(record []bool) {
		d.acq.Passes++
		vals := price()
		for i, v := range vals {
			if ch.apply != nil {
				v = ch.apply(v)
			}
			d.acq.Raw++

			// A latched ADC repeats its value bit-for-bit, so a sample
			// that exactly equals the previous reading of a *different*
			// stimulus — or that extends such a run — is a latch repeat.
			// Same-stimulus repeats are legitimate (a noiseless chip
			// returns identical values), so they are exempt unless the
			// run is already suspect. The run state advances on every
			// reading, recorded or not, to stay aligned with the stream.
			suspect := false
			if ch.useGuard && p.StuckGuard {
				k := key(i)
				suspect = v == d.prevRaw && (k != d.prevKey || d.prevSuspect)
				d.prevRaw, d.prevKey, d.prevSuspect = v, k, suspect
			}

			if record != nil && !record[i] {
				continue
			}
			if math.IsNaN(v) {
				d.acq.Dropped++
				continue
			}
			if suspect {
				d.acq.Latched++
				continue
			}
			samples[i] = append(samples[i], v)
		}
	}
	for r := 0; r < p.Repeats; r++ {
		// Between passes is the one safe abort point: bailing here
		// delivers NaN for every lane rather than aggregates over
		// whichever passes completed — a cancelled job must never see
		// partial readings (they would differ from any uncancelled run).
		if d.cancelled() != nil {
			return d.nanReadings(n)
		}
		sweep(nil)
	}

	surviving := func(i int) []float64 {
		if p.MADThreshold > 0 {
			return stats.RejectOutliersMAD(samples[i], p.MADThreshold)
		}
		return samples[i]
	}
	// unsettled reports whether a reading still needs re-measurement:
	// too few surviving samples, or survivors that disagree beyond the
	// spread gate (a burst window can outlast every repeat of a small
	// batch, leaving samples that are individually plausible but
	// mutually inconsistent).
	unsettled := func(kept []float64) bool {
		if len(kept) < p.MinValid {
			return true
		}
		if p.SpreadGate <= 0 {
			return false
		}
		med, mad := stats.MAD(kept)
		return mad > p.SpreadGate*math.Abs(med)
	}
	for retry := 0; retry < p.RetryBudget; retry++ {
		if d.cancelled() != nil {
			return d.nanReadings(n)
		}
		deficient := make([]bool, n)
		any := false
		for i := range samples {
			if unsettled(surviving(i)) {
				deficient[i] = true
				any = true
			}
		}
		if !any {
			break
		}
		d.acq.Retries++
		sweep(deficient)
	}

	out := make([]float64, n)
	for i := range samples {
		kept := surviving(i)
		d.acq.Rejected += uint64(len(samples[i]) - len(kept))
		d.acq.Readings++
		if unsettled(kept) {
			// The retry budget ran out without stabilizing this reading.
			d.acq.Unstable++
			out[i] = math.NaN()
			continue
		}
		switch p.Aggregation {
		case AggMedian:
			out[i] = stats.Median(kept)
		case AggTrimmedMean:
			out[i] = stats.TrimmedMean(kept, p.TrimFrac)
		default:
			var sum float64
			for _, v := range kept {
				sum += v
			}
			out[i] = sum / float64(len(kept))
		}
	}
	return out
}

// Measure applies a single pattern.
func (d *Device) Measure(p *scan.Pattern) float64 {
	return d.MeasureBatch([]*scan.Pattern{p})[0]
}

// NewSweeper builds a single-flip sweep engine over the device's scan
// configuration and physical netlist, for use with MeasureSweep. The
// sweeper's base launches use the device's current engine kind.
func (d *Device) NewSweeper(flips []scan.Flip) (*scan.Sweeper, error) {
	return scan.NewSweeperKind(d.eng.Chains(), d.mode, flips, d.eng.Kind())
}

// MeasureSweep acquires readings for one sweep chunk: lane i is the base
// pattern with flips[i] applied, and (ids, masks) is the chunk's sparse
// toggle encoding of the physical netlist (from a Sweeper built with
// NewSweeper). Acquisition semantics — repeats, tester faults, outlier
// rejection, the stuck-latch guard, retries — are bit-identical to
// MeasureBatch over the materialized patterns, including the run-context
// contract: a cancelled context yields NaN lanes and a non-nil Err,
// never partially-aggregated readings. The returned slice may share the
// device's scratch storage; it is valid until the next measurement.
func (d *Device) MeasureSweep(base *scan.Pattern, flips []scan.Flip, ids []int, masks []logic.Word) []float64 {
	n := len(flips)
	price := func() []float64 {
		d.sweepRaw = d.chip.MeasureLanesSparse(ids, masks, n, d.sweepRaw)
		return d.sweepRaw
	}
	if d.eng.Kind() == sim.EnginePPSFP {
		// The PPSFP configuration prices through the vectorized kernel;
		// the sums — and the lane-order noise draws after them — are
		// bit-identical to the scalar loop.
		price = func() []float64 {
			d.sweepRaw = d.chip.MeasureLanesSparseVec(ids, masks, n, d.sweepRaw)
			return d.sweepRaw
		}
	}
	return d.acquire(n, price,
		func(i int) readingKey {
			return readingKey{pat: base, chain: flips[i].Chain, index: flips[i].Index, sweep: true}
		})
}

// MeasureDelayBatch applies a set of patterns as transition-delay
// launches and returns one sensitized-path-delay reading per pattern,
// acquired under the configured policy. The physical truth per pattern
// is the worst arrival over the gates the launch toggles on the die's
// true (process-varied) delays; the tester's delay fault model (jitter,
// TDC quantization, dropped conversions) perturbs the stream, and the
// same repeats/MAD/retry machinery as the power path stabilizes it.
// Requires SetDelayChip; panics otherwise (programming error, like an
// oversized engine launch).
//
// The delay path deliberately touches no power-channel state: the power
// fault stream, the chip's measurement-noise RNG and the stuck-guard
// run state all stay exactly where a power-only run would leave them.
func (d *Device) MeasureDelayBatch(pats []*scan.Pattern) []float64 {
	if d.dchip == nil {
		panic("core: MeasureDelayBatch without SetDelayChip")
	}
	out := make([]float64, 0, len(pats))
	for start := 0; start < len(pats); start += 64 {
		end := start + 64
		if end > len(pats) {
			end = len(pats)
		}
		out = append(out, d.measureDelayChunk(pats[start:end])...)
	}
	return out
}

// measureDelayChunk acquires delay readings for 1..64 patterns (one
// launch). The die's true path delays are computed once per chunk —
// they are deterministic per pattern, all between-pass variation coming
// from the tester — and re-served to every acquisition pass.
func (d *Device) measureDelayChunk(pats []*scan.Pattern) []float64 {
	if _, _, err := d.eng.Launch(pats, d.mode); err != nil {
		panic(err.Error()) // chunked to 1..64 patterns by construction
	}
	sets, tbuf := d.eng.TogglesAllBuf(len(pats), d.delayTog)
	d.delayTog = tbuf
	if cap(d.delayRaw) < len(pats) {
		d.delayRaw = make([]float64, len(pats))
	}
	raw := d.delayRaw[:len(pats)]
	for i := range pats {
		raw[i] = d.dwalker.PathDelay(d.dchip.Delays(), sets[i])
	}

	var apply func(float64) float64
	exact := true
	if d.faults != nil && d.faults.Config().DelayEnabled() {
		apply = d.faults.ApplyDelay
		exact = false
	}
	return d.acquireChannel(len(pats),
		func() []float64 { return raw },
		func(i int) readingKey { return readingKey{pat: pats[i]} },
		acqChannel{
			site:  "core/acquire/delay",
			apply: apply,
			exact: exact,
			// No stuck guard: a quantizing TDC repeats codes across
			// different stimuli legitimately, and the guard's run state
			// belongs to the power stream.
			useGuard: false,
		})
}

// MeasureDelay applies a single pattern as a transition-delay launch.
func (d *Device) MeasureDelay(p *scan.Pattern) float64 {
	return d.MeasureDelayBatch([]*scan.Pattern{p})[0]
}

// GroundTruthToggles returns the physical toggle set of a pattern
// (infected-netlist gate IDs). EVALUATION ONLY: a real tester cannot
// observe per-gate activity; the metrics harness uses this to compute TCA
// against the inserted Trojan's ground truth.
func (d *Device) GroundTruthToggles(p *scan.Pattern) []int {
	if _, _, err := d.eng.Launch([]*scan.Pattern{p}, d.mode); err != nil {
		panic(err.Error()) // single-pattern launch cannot be out of range
	}
	return d.eng.Toggles(0)
}

// PhysicalNetlist exposes the physical netlist. EVALUATION ONLY.
func (d *Device) PhysicalNetlist() *netlist.Netlist { return d.physical }
