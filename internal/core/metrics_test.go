package core

import (
	"math"
	"sort"
	"testing"
	"testing/quick"

	"superpose/internal/stats"
)

func TestRPD(t *testing.T) {
	if got := RPD(110, 100); math.Abs(got-0.10) > 1e-12 {
		t.Errorf("RPD = %v", got)
	}
	if got := RPD(90, 100); math.Abs(got+0.10) > 1e-12 {
		t.Errorf("RPD = %v", got)
	}
	if RPD(5, 0) != 0 {
		t.Error("zero nominal must yield 0, not Inf")
	}
}

func TestSplitToggles(t *testing.T) {
	common, aU, bU := SplitToggles([]int{5, 1, 3, 7}, []int{3, 2, 7, 9})
	want := func(got, want []int) {
		t.Helper()
		if len(got) != len(want) {
			t.Fatalf("got %v want %v", got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("got %v want %v", got, want)
			}
		}
	}
	want(common, []int{3, 7})
	want(aU, []int{1, 5})
	want(bU, []int{2, 9})
}

func TestSplitTogglesPartitionProperty(t *testing.T) {
	f := func(araw, braw []uint8) bool {
		// Deduplicate inputs (toggle sets are sets).
		dedup := func(xs []uint8) []int {
			m := map[int]bool{}
			for _, x := range xs {
				m[int(x)] = true
			}
			var out []int
			for x := range m {
				out = append(out, x)
			}
			return out
		}
		a, b := dedup(araw), dedup(braw)
		common, aU, bU := SplitToggles(a, b)
		// Reconstruction: common+aU == a, common+bU == b (as sets).
		rebuildA := append(append([]int{}, common...), aU...)
		rebuildB := append(append([]int{}, common...), bU...)
		sort.Ints(rebuildA)
		sort.Ints(rebuildB)
		sa := append([]int{}, a...)
		sb := append([]int{}, b...)
		sort.Ints(sa)
		sort.Ints(sb)
		if len(rebuildA) != len(sa) || len(rebuildB) != len(sb) {
			return false
		}
		for i := range sa {
			if rebuildA[i] != sa[i] {
				return false
			}
		}
		for i := range sb {
			if rebuildB[i] != sb[i] {
				return false
			}
		}
		// Uniques are disjoint from each other.
		inB := map[int]bool{}
		for _, x := range bU {
			inB[x] = true
		}
		for _, x := range aU {
			if inB[x] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

// TestEquation3Identity checks the closed-form derivation of Eq. 3: with
// the common activity at nominal, unique-A gates uniformly at (1+ς) and
// unique-B gates at (1-ς), the S-RPD evaluates to exactly ς regardless of
// the set sizes.
func TestEquation3Identity(t *testing.T) {
	f := func(cmnRaw, auRaw, buRaw uint16, sigRaw uint8) bool {
		pnCmn := float64(cmnRaw)/100 + 1
		pnAu := float64(auRaw)/100 + 0.5
		pnBu := float64(buRaw)/100 + 0.5
		varsigma := float64(sigRaw%50)/100 + 0.01 // 0.01 .. 0.51

		poA := pnCmn + (1+varsigma)*pnAu
		poB := pnCmn + (1-varsigma)*pnBu
		pnA := pnCmn + pnAu
		pnB := pnCmn + pnBu

		got := SRPD(poA, poB, pnA, pnB, pnAu, pnBu)
		return math.Abs(got-varsigma) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSRPDCancelsCommonActivity(t *testing.T) {
	// Any perturbation confined to the common set cancels exactly.
	f := func(noiseRaw int16) bool {
		noise := float64(noiseRaw) / 100
		pnCmn, pnAu, pnBu := 50.0, 3.0, 2.0
		poA := (pnCmn + noise) + pnAu
		poB := (pnCmn + noise) + pnBu
		got := SRPD(poA, poB, pnCmn+pnAu, pnCmn+pnBu, pnAu, pnBu)
		return math.Abs(got) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSRPDZeroDenominator(t *testing.T) {
	if SRPD(10, 9, 10, 9, 0, 0) != 0 {
		t.Error("identical activity must yield 0, not NaN")
	}
}

func TestTCA(t *testing.T) {
	isTroj := func(id int) bool { return id >= 100 }
	if got := TCA([]int{1, 2, 100, 101}, isTroj); got != 0.5 {
		t.Errorf("TCA = %v", got)
	}
	if TCA(nil, isTroj) != 0 {
		t.Error("empty toggle set")
	}
	if got := PairTCA([]int{1, 2, 100}, []int{1, 2, 101}, isTroj); got != 1.0 {
		t.Errorf("PairTCA = %v (common benign must cancel)", got)
	}
}

// TestDetectionProbabilityTableII reproduces Table II's closed-form rows
// from the paper's achieved S-RPD values.
func TestDetectionProbabilityTableII(t *testing.T) {
	cases := []struct {
		srpd, varsigma, want float64
	}{
		{0.195, 0.20, 0.9983}, // s35932-T200 @ 20%
		{0.195, 0.25, 0.9904}, // s35932-T200 @ 25%
		{0.259, 0.25, 0.9991}, // s35932-T300 @ 25%
		{0.136, 0.15, 0.9967}, // s38417-T100 @ 15%
		{0.136, 0.20, 0.9793}, // s38417-T100 @ 20%
		{0.136, 0.25, 0.9484}, // s38417-T100 @ 25%
		{0.218, 0.20, 0.9995}, // s38417-T200 @ 20%
		{0.218, 0.25, 0.9956}, // s38417-T200 @ 25%
		{0.210, 0.25, 0.9941}, // s38584-T100 @ 25%
	}
	for _, c := range cases {
		got := DetectionProbability(c.srpd, c.varsigma)
		if math.Abs(got-c.want) > 6e-4 {
			t.Errorf("P(srpd=%v, ς=%v) = %.4f, want %.4f", c.srpd, c.varsigma, got, c.want)
		}
	}
	// Negative signals count by magnitude.
	if DetectionProbability(-0.2, 0.2) != DetectionProbability(0.2, 0.2) {
		t.Error("sign must not matter")
	}
	// Degenerate variation.
	if DetectionProbability(0.1, 0) != 1 || DetectionProbability(0, 0) != 0 {
		t.Error("zero-variation edge cases")
	}
}

func TestFormatProbability(t *testing.T) {
	if got := FormatProbability(0.99999); got != "> 99.99%" {
		t.Errorf("got %q", got)
	}
	if got := FormatProbability(0.9484); got != "94.84%" {
		t.Errorf("got %q", got)
	}
}

func TestMaxBenignSRPD(t *testing.T) {
	if MaxBenignSRPD(0.25) != 0.25 {
		t.Error("Eq. 3: max benign S-RPD is ς itself")
	}
}

// TestBenignSRPDBoundMonteCarlo validates the Eq. 3 bound statistically:
// across many manufactured benign dies, a pattern pair's |S-RPD| should
// exceed ς only with the small probability the Gaussian tail allows.
func TestBenignSRPDBoundMonteCarlo(t *testing.T) {
	// Direct model-level Monte Carlo of the Eq. 2 estimator: unique sets
	// of 10 and 8 gates with unit nominal energy, per-gate N(1, σ²) PV.
	varsigma := 0.25
	sigma := varsigma / 3
	rng := stats.NewRNG(99)
	const dies = 5000
	exceed := 0
	for d := 0; d < dies; d++ {
		var poA, poB, pnA, pnB float64
		pnCmn := 100.0
		poA, poB = pnCmn, pnCmn // common part cancels even with shared PV
		var pnAu, pnBu float64
		for i := 0; i < 10; i++ {
			e := 1 + sigma*rng.Norm()
			poA += e
			pnAu++
		}
		for i := 0; i < 8; i++ {
			e := 1 + sigma*rng.Norm()
			poB += e
			pnBu++
		}
		pnA, pnB = pnCmn+pnAu, pnCmn+pnBu
		s := SRPD(poA, poB, pnA, pnB, pnAu, pnBu)
		if math.Abs(s) > varsigma {
			exceed++
		}
	}
	// The estimator's std is σ·sqrt(nA+nB)/(nA+nB) = σ/sqrt(18) ≈ 0.0196,
	// so exceeding ς=0.25 (≈12.7 std) is essentially impossible; allow a
	// minuscule tolerance for the bound check.
	if exceed > 0 {
		t.Errorf("benign |S-RPD| exceeded ς on %d/%d dies", exceed, dies)
	}
}
