package core

import (
	"context"
	"fmt"
	"math"
	"sync/atomic"

	"superpose/internal/atpg"
	"superpose/internal/delay"
	"superpose/internal/netlist"
	"superpose/internal/parallel"
	"superpose/internal/power"
	"superpose/internal/scan"
	"superpose/internal/stats"
	"superpose/internal/tester"
	"superpose/internal/timing"
)

// LotOptions describes a manufacturing lot to certify.
type LotOptions struct {
	// Dies is the lot size (default 5).
	Dies int
	// Variation is the per-die process draw.
	Variation power.Variation
	// Seed selects the lot (die i uses Seed + i·0x9E37).
	Seed uint64
	// MeasurementNoise, when positive, adds relative Gaussian noise to
	// every power reading (tester noise), exercising the flow's
	// robustness beyond pure process variation.
	MeasurementNoise float64
	// MeasurementRepeats averages this many applications per reading
	// (tester averaging; meaningful with MeasurementNoise). Default 1.
	// Ignored when Acquisition is set (whose Repeats then governs).
	MeasurementRepeats int
	// Tester, when enabled, interposes a tester fault model (outlier
	// spikes, dropped readings, drift, burst noise, stuck latches) on
	// every die's reading stream; see tester.Config and tester.Preset.
	// Each die gets an independent, reproducible fault realization
	// derived from Tester.Seed and the die index.
	Tester tester.Config
	// Acquisition, when non-zero, sets every die device's measurement-
	// acquisition policy (see AcquisitionPolicy); it also propagates to
	// Config.Acquisition so Detect does not reset it.
	Acquisition AcquisitionPolicy
	// Workers bounds the per-die fan-out of the certification (see
	// internal/parallel): 0 means one worker per CPU, 1 the exact legacy
	// serial path. Every worker count produces bit-identical lot reports —
	// each die's seeds derive from its index alone.
	Workers int
	// Progress, when non-nil, receives a StageDie event as each die's
	// certification completes (Step = dies finished so far, Total =
	// Dies). Dies fan out across workers, so the callback MUST be safe
	// for concurrent use; completion order is scheduling-dependent even
	// though the lot report itself is bit-identical at any worker count.
	Progress ProgressFunc
}

func (o LotOptions) withDefaults() LotOptions {
	if o.Dies == 0 {
		o.Dies = 5
	}
	return o
}

// DieResult is one die's certification outcome within a lot.
type DieResult struct {
	Die      int     `json:"die"`
	Seed     uint64  `json:"seed"`
	Report   *Report `json:"report,omitempty"`
	FinalMag float64 `json:"final_mag"` // |FinalSRPD|
	// DelayMag is the delay channel's score (NaN when the channel was
	// not measured or never stabilized); FusedScore the learned-fusion
	// score (NaN unless the lot ran the fused channel with a trained
	// calibration). Both are NaN-safe on the wire (see wire.go).
	DelayMag   float64 `json:"delay_mag"`
	FusedScore float64 `json:"fused_score"`
}

// LotReport aggregates a lot certification. Like Report it is a wire
// type for the certification service (see wire.go for the NaN handling
// on the per-die FinalMag).
type LotReport struct {
	Dies     []DieResult   `json:"dies"`
	Detected int           `json:"detected"`
	SRPD     stats.Summary `json:"srpd"` // of |FinalSRPD| across dies (stable dies only)
	// Unstable counts dies whose final signal never stabilized under the
	// tester fault model (NaN |S-RPD|); they are excluded from the SRPD
	// summary and can never be Detected.
	Unstable int `json:"unstable"`
	// Acquisition accumulates the acquisition counters across dies.
	Acquisition AcquisitionStats `json:"acquisition"`

	// Delay/fused channel aggregates, populated when the lot's Config
	// selected a delay-bearing channel: per-channel detection counts and
	// summaries of the stable per-die scores (NaN scores excluded, like
	// SRPD's treatment of unstable dies).
	DelayDetected int           `json:"delay_detected,omitempty"`
	FusedDetected int           `json:"fused_detected,omitempty"`
	Delay         stats.Summary `json:"delay"`
	Fused         stats.Summary `json:"fused"`
}

// DetectionRate returns the fraction of dies flagged.
func (lr *LotReport) DetectionRate() float64 {
	if len(lr.Dies) == 0 {
		return 0
	}
	return float64(lr.Detected) / float64(len(lr.Dies))
}

// String summarizes the lot.
func (lr *LotReport) String() string {
	s := fmt.Sprintf("lot: %d/%d dies flagged; |S-RPD| mean %.4f [%.4f, %.4f]",
		lr.Detected, len(lr.Dies), lr.SRPD.Mean, lr.SRPD.Min, lr.SRPD.Max)
	if lr.Unstable > 0 {
		s += fmt.Sprintf("; %d unstable", lr.Unstable)
	}
	return s
}

// CertifyLot manufactures `Dies` instances of the physical netlist (which
// may or may not carry a Trojan — the caller decides what reality to
// simulate) and runs the full detection pipeline against each, with the
// golden netlist as reference. Each die gets an independent process-
// variation draw; the detection flow itself is identical across dies.
//
// On an infected lot the detection rate estimates the method's true
// positive rate at the configured variation; on a clean lot it estimates
// the false positive rate.
func CertifyLot(golden *netlist.Netlist, lib *power.Library, physical *netlist.Netlist,
	cfg Config, lot LotOptions) (*LotReport, error) {
	return CertifyLotContext(context.Background(), golden, lib, physical, cfg, lot)
}

// CertifyLotContext is CertifyLot under a run context: the per-die
// fan-out stops dispatching on cancellation and every in-flight die's
// Detect aborts mid-climb (see DetectContext), so a cancelled lot
// certification returns promptly with ctx's error instead of running the
// remaining dies to completion. With a background context it is
// bit-identical to CertifyLot.
func CertifyLotContext(ctx context.Context, golden *netlist.Netlist, lib *power.Library,
	physical *netlist.Netlist, cfg Config, lot LotOptions) (*LotReport, error) {
	lot = lot.withDefaults()
	cfg = cfg.withDefaults()
	if lot.Acquisition != (AcquisitionPolicy{}) {
		// Hoisted out of the per-die work: cfg must be immutable while
		// the dies fan out (it is captured by every worker).
		cfg.Acquisition = lot.Acquisition
	}
	// A per-die detect progress callback would interleave across worker
	// goroutines into noise; the lot reports die-granular progress via
	// lot.Progress instead.
	cfg.Progress = nil

	// Fan out per die. Each die's entire state — chip, device, tester
	// fault realization, evaluator — is constructed inside its own item
	// from seeds derived purely from the die index, so the fan-out is
	// bit-reproducible at any worker count; the fan-in below runs in die
	// order, identically to the legacy serial loop.
	var done atomic.Int64
	dies, err := parallel.Map(ctx, lot.Workers, lot.Dies,
		func(die int) (DieResult, error) {
			seed := lot.Seed + uint64(die)*0x9E37
			chip := power.Manufacture(physical, lib, lot.Variation, seed)
			if lot.MeasurementNoise > 0 {
				chip.SetMeasurementNoise(lot.MeasurementNoise)
			}
			dev := NewDevice(chip, cfg.NumChains, cfg.Mode)
			defer dev.Close() // per-die device; recycle its pooled buffers
			if cfg.Channel.UsesDelay() {
				// The delay die shares the lot's variation magnitudes but
				// draws from a decorrelated stream (see delay.Manufacture):
				// power and delay realities of the same die are independent,
				// reproducible from the same per-die seed.
				dev.SetDelayChip(delay.Manufacture(physical, timing.SAED90LikeDelays(), lot.Variation, seed))
			}
			if lot.MeasurementRepeats > 1 {
				dev.SetRepeats(lot.MeasurementRepeats)
			}
			if lot.Acquisition != (AcquisitionPolicy{}) {
				dev.SetAcquisition(lot.Acquisition)
			}
			if lot.Tester.Enabled() {
				tc := lot.Tester
				// Per-die fault realization, decorrelated from the process
				// draw but reproducible from the lot seed.
				tc.Seed ^= seed * 0x9E3779B97F4A7C15
				dev.SetFaultModel(tester.New(tc))
			}
			rep, err := DetectContext(ctx, golden, lib, dev, cfg)
			if err != nil {
				return DieResult{}, fmt.Errorf("core: die %d: %w", die, err)
			}
			lot.Progress.emit(StageDie, int(done.Add(1)), lot.Dies, "die certified")
			dr := DieResult{
				Die: die, Seed: seed, Report: rep,
				FinalMag:   abs(rep.FinalSRPD),
				DelayMag:   math.NaN(),
				FusedScore: rep.FusedScore,
			}
			if rep.Delay != nil {
				dr.DelayMag = rep.Delay.Score
			}
			return dr, nil
		})
	if err != nil {
		return nil, err
	}

	lr := &LotReport{Dies: dies}
	var mags, delayMags, fusedScores []float64
	for _, d := range dies {
		if d.Report.Detected {
			lr.Detected++
		}
		if math.IsNaN(d.FinalMag) {
			lr.Unstable++
		} else {
			mags = append(mags, d.FinalMag)
		}
		if d.Report.Delay != nil {
			if d.Report.Delay.Detected {
				lr.DelayDetected++
			}
			if !math.IsNaN(d.DelayMag) {
				delayMags = append(delayMags, d.DelayMag)
			}
		}
		if d.Report.FusedDetected {
			lr.FusedDetected++
		}
		if !math.IsNaN(d.FusedScore) {
			fusedScores = append(fusedScores, d.FusedScore)
		}
		lr.Acquisition = lr.Acquisition.add(d.Report.Acquisition)
	}
	lr.SRPD = stats.Summarize(mags)
	lr.Delay = stats.Summarize(delayMags)
	lr.Fused = stats.Summarize(fusedScores)
	return lr, nil
}

// WithSharedSeeds generates the ATPG seed patterns once and stamps them
// into the config, so a lot certification does not regenerate them per
// die: the seeds depend only on the golden netlist. A config that already
// carries seed patterns is returned unchanged.
func WithSharedSeeds(golden *netlist.Netlist, cfg Config) (Config, error) {
	if len(cfg.SeedPatterns) > 0 {
		return cfg, nil
	}
	cfg = cfg.withDefaults()
	ch := scan.Configure(golden, cfg.NumChains)
	gen, err := atpg.Generate(ch, cfg.ATPG)
	if err != nil {
		return cfg, err
	}
	cfg.SeedPatterns = gen.Patterns
	return cfg, nil
}
