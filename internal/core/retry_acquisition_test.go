package core

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"math"
	"testing"

	"superpose/internal/power"
	"superpose/internal/scan"
	"superpose/internal/tester"
	"superpose/internal/trust"
)

// retryAcqDetect runs the first benchmark case's infected die under a
// named tester fault preset and acquisition policy — the single-die
// fixture of the retry × acquisition tests (the full table lives in
// TestRobustnessTableQuick).
func retryAcqDetect(t *testing.T, regime string, policy AcquisitionPolicy) (*Report, error) {
	t.Helper()
	cfg := quickRobustnessConfig().withDefaults()
	inst, err := trust.Build(trust.Cases()[0], cfg.Scale)
	if err != nil {
		t.Fatal(err)
	}
	lib := power.SAED90Like()
	chip := power.Manufacture(inst.Infected, lib, power.ThreeSigmaIntra(cfg.Varsigma), cfg.ChipSeed)
	return robustnessDetect(context.Background(), inst.Host, lib, chip, regime, cfg.ChipSeed, policy, cfg)
}

// TestRetryAcquisitionBurstBitIdentical: under the burst preset the
// robust policy's retry budget re-measures the readings a noise window
// contaminated, the verdict survives, and — because every retry pass is
// seeded — two runs of the identical configuration produce bit-identical
// reports, retries included.
func TestRetryAcquisitionBurstBitIdentical(t *testing.T) {
	a, err := retryAcqDetect(t, "burst", RobustAcquisition())
	if err != nil {
		t.Fatal(err)
	}
	b, err := retryAcqDetect(t, "burst", RobustAcquisition())
	if err != nil {
		t.Fatal(err)
	}
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Errorf("burst-preset runs differ:\nfirst:  %s\nsecond: %s", aj, bj)
	}
	if !a.Detected {
		t.Errorf("robust policy missed the Trojan under the burst preset: %+v", a)
	}
	if math.IsNaN(a.FinalSRPD) {
		t.Errorf("final |S-RPD| is NaN despite a successful robust run: %v", a.Acquisition)
	}
	if a.Acquisition.Raw <= a.Acquisition.Readings {
		t.Errorf("robust policy took no extra samples under the burst preset: %v", a.Acquisition)
	}
}

// TestRetryAcquisitionStuckBitIdentical is the same contract under the
// stuck preset: aggressive ADC latching that only the stuck-latch guard
// catches. The guard's discards must show in the accounting, and the
// run must stay bit-reproducible.
func TestRetryAcquisitionStuckBitIdentical(t *testing.T) {
	a, err := retryAcqDetect(t, "stuck", RobustAcquisition())
	if err != nil {
		t.Fatal(err)
	}
	b, err := retryAcqDetect(t, "stuck", RobustAcquisition())
	if err != nil {
		t.Fatal(err)
	}
	aj, err := json.Marshal(a)
	if err != nil {
		t.Fatal(err)
	}
	bj, err := json.Marshal(b)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(aj, bj) {
		t.Errorf("stuck-preset runs differ:\nfirst:  %s\nsecond: %s", aj, bj)
	}
	if !a.Detected {
		t.Errorf("robust policy missed the Trojan under the stuck preset: %+v", a)
	}
	if a.Acquisition.Latched == 0 {
		t.Errorf("stuck guard discarded nothing under the stuck preset: %v", a.Acquisition)
	}
}

// TestRetryAcquisitionExhaustedBudgetSurfacesUnstable starves the retry
// budget under latching heavy enough that readings cannot reach MinValid
// survivors. The flow must fail honestly — unstable readings counted,
// seed/pair exclusions annotated, or the run refused with ErrUnstable —
// never a confident verdict silently computed through NaNs.
func TestRetryAcquisitionExhaustedBudgetSurfacesUnstable(t *testing.T) {
	starved := RobustAcquisition()
	starved.RetryBudget = 0

	cfg := quickRobustnessConfig().withDefaults()
	inst, err := trust.Build(trust.Cases()[0], cfg.Scale)
	if err != nil {
		t.Fatal(err)
	}
	lib := power.SAED90Like()
	chip := power.Manufacture(inst.Infected, lib, power.ThreeSigmaIntra(cfg.Varsigma), cfg.ChipSeed)
	dev := NewDevice(chip, cfg.NumChains, scan.LOS)
	dev.SetAcquisition(starved)
	dev.SetFaultModel(tester.New(tester.Config{Seed: 3, StuckRate: 0.2, StuckLen: 64}))

	rep, err := DetectContext(context.Background(), inst.Host, lib, dev, Config{
		NumChains:   cfg.NumChains,
		ATPG:        cfg.ATPG,
		MaxSeeds:    cfg.MaxSeeds,
		MaxPairs:    cfg.MaxPairs,
		Varsigma:    cfg.Varsigma,
		Acquisition: starved,
	})
	if err != nil {
		if !errors.Is(err, ErrUnstable) {
			t.Fatalf("starved run failed with %v, want ErrUnstable", err)
		}
		return // honest refusal: every seed unstable, classified as such
	}
	if rep.Acquisition.Unstable == 0 {
		t.Errorf("no unstable readings recorded despite a starved retry budget under heavy latching: %v", rep.Acquisition)
	}
	if math.IsNaN(rep.FinalSRPD) {
		// A NaN verdict is only acceptable when the exclusions explain it.
		if rep.UnstableSeeds == 0 && rep.UnstablePairs == 0 {
			t.Errorf("NaN verdict with no unstable-seed/pair annotation (NaN-silent): %+v", rep)
		}
	}
}
