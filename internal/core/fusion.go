package core

// The fusion experiment: power vs delay vs fused ROC across tester
// fault presets. The fused operating point is learned on a clean
// training lot (fusion.Train), then evaluated on held-out infected and
// clean lots, so the table reports honest out-of-sample numbers: the
// training controls never appear in any ROC, and the false-positive
// column counts held-out clean dies only.

import (
	"context"
	"encoding/json"
	"fmt"

	"superpose/internal/fusion"
	"superpose/internal/parallel"
	"superpose/internal/power"
	"superpose/internal/tester"
	"superpose/internal/trust"
)

// FusionPresets are the tester fault regimes of the fusion table:
// the ideal tester, the power-hostile drift pathology (where the TDC
// sees only mild jitter, so the delay channel should rescue the
// verdict), and the everything-at-once regime.
var FusionPresets = []string{"clean", "drift", "combined"}

// FusionRow is one tester fault preset's line of the fusion table:
// the per-channel AUCs over held-out infected/clean lots, the learned
// operating point, and the honesty columns (training and held-out
// false positives at that operating point).
type FusionRow struct {
	Preset string `json:"preset"`
	Case   string `json:"case"`

	// AUC of each channel's score over the held-out lots (NaN when the
	// channel produced no finite score — wire-safe via wire.go).
	PowerAUC float64 `json:"power_auc"`
	DelayAUC float64 `json:"delay_auc"`
	FusedAUC float64 `json:"fused_auc"`

	// Threshold is the learned fused verdict bound (1 + margin in
	// normalized score space).
	Threshold float64 `json:"threshold"`
	// TrainDies / TrainFP: clean training controls consumed, and how
	// many the learned operating point flags (0 by construction).
	TrainDies int `json:"train_dies"`
	TrainFP   int `json:"train_fp"`
	// Detection accounting over the held-out lots at the learned
	// operating point (fused channel) and the fixed ς bound (power).
	Infected      int `json:"infected"`
	Clean         int `json:"clean"`
	FusedDetected int `json:"fused_detected"`
	FusedFP       int `json:"fused_fp"`
	PowerDetected int `json:"power_detected"`
	PowerFP       int `json:"power_fp"`
	// Unstable counts held-out dies whose power channel never
	// stabilized (NaN |S-RPD|).
	Unstable int `json:"unstable"`

	// The full per-channel curves, for the ROC artifact.
	PowerROC []ROCPoint `json:"power_roc,omitempty"`
	DelayROC []ROCPoint `json:"delay_roc,omitempty"`
	FusedROC []ROCPoint `json:"fused_roc,omitempty"`
}

// String renders the row compactly.
func (r FusionRow) String() string {
	return fmt.Sprintf("%-8s AUC power %.3f delay %.3f fused %.3f  thr %.3g  fusedTPR %d/%d  fusedFP %d/%d  trainFP %d/%d",
		r.Preset, r.PowerAUC, r.DelayAUC, r.FusedAUC, r.Threshold,
		r.FusedDetected, r.Infected, r.FusedFP, r.Clean, r.TrainFP, r.TrainDies)
}

// RunFusionRow evaluates one tester fault preset: train the fused
// calibration on a clean control lot, then certify held-out infected
// and clean lots of the same benchmark under the same preset and score
// all three channels. trainDies/evalDies of 0 take the defaults (8/6).
func RunFusionRow(preset string, c trust.Case, cfg ExperimentConfig, trainDies, evalDies int) (FusionRow, error) {
	return RunFusionRowContext(context.Background(), preset, c, cfg, trainDies, evalDies)
}

// RunFusionRowContext is RunFusionRow under a run context: the three
// lot certifications stop dispatching dies on cancellation (see
// CertifyLotContext).
func RunFusionRowContext(ctx context.Context, preset string, c trust.Case, cfg ExperimentConfig, trainDies, evalDies int) (FusionRow, error) {
	cfg = cfg.withDefaults()
	if trainDies <= 0 {
		trainDies = 8
	}
	if evalDies <= 0 {
		evalDies = 6
	}
	inst, err := trust.Build(c, cfg.Scale)
	if err != nil {
		return FusionRow{}, fmt.Errorf("fusion %s: %w", preset, err)
	}
	lib := power.SAED90Like()
	base, err := WithSharedSeeds(inst.Host, Config{
		NumChains:   cfg.NumChains,
		ATPG:        cfg.ATPG,
		MaxSeeds:    cfg.MaxSeeds,
		MaxPairs:    cfg.MaxPairs,
		Varsigma:    cfg.Varsigma,
		Acquisition: RobustAcquisition(),
		Channel:     ChannelFused,
	})
	if err != nil {
		return FusionRow{}, fmt.Errorf("fusion %s: seeds: %w", preset, err)
	}

	// Each lot gets its own process-variation stream and tester fault
	// realization, derived from the chip seed and a per-lot salt alone,
	// so the row is bit-identical at any worker count.
	lot := func(dies, salt int) (LotOptions, error) {
		tc, err := tester.Preset(preset, parallel.Mix(cfg.ChipSeed^0xFA57, salt))
		if err != nil {
			return LotOptions{}, fmt.Errorf("fusion preset %q: %w", preset, err)
		}
		return LotOptions{
			Dies:        dies,
			Variation:   power.ThreeSigmaIntra(cfg.Varsigma),
			Seed:        parallel.Mix(cfg.ChipSeed, salt),
			Tester:      tc,
			Acquisition: RobustAcquisition(),
			Workers:     cfg.Workers,
		}, nil
	}

	// Train: a clean control lot under the same tester preset. The
	// config carries no calibration yet (Fusion nil), so the dies
	// measure both channels but render no fused verdict.
	trainLot, err := lot(trainDies, 1)
	if err != nil {
		return FusionRow{}, err
	}
	train, err := CertifyLotContext(ctx, inst.Host, lib, inst.Host, base, trainLot)
	if err != nil {
		return FusionRow{}, fmt.Errorf("fusion %s: training lot: %w", preset, err)
	}
	obs := make([]fusion.Observation, 0, len(train.Dies))
	for _, d := range train.Dies {
		obs = append(obs, fusion.Observation{Power: d.FinalMag, Delay: d.DelayMag})
	}
	cal := fusion.Train(obs, 0)

	row := FusionRow{
		Preset:    preset,
		Case:      c.String(),
		Threshold: cal.Threshold,
		TrainDies: len(obs),
	}
	for _, o := range obs {
		if cal.Detect(o) {
			row.TrainFP++
		}
	}

	// Evaluate: held-out infected and clean lots carrying the learned
	// calibration.
	eval := base
	eval.Fusion = &cal
	infLot, err := lot(evalDies, 2)
	if err != nil {
		return FusionRow{}, err
	}
	infected, err := CertifyLotContext(ctx, inst.Host, lib, inst.Infected, eval, infLot)
	if err != nil {
		return FusionRow{}, fmt.Errorf("fusion %s: infected lot: %w", preset, err)
	}
	cleanLot, err := lot(evalDies, 3)
	if err != nil {
		return FusionRow{}, err
	}
	clean, err := CertifyLotContext(ctx, inst.Host, lib, inst.Host, eval, cleanLot)
	if err != nil {
		return FusionRow{}, fmt.Errorf("fusion %s: clean lot: %w", preset, err)
	}

	row.Infected = len(infected.Dies)
	row.Clean = len(clean.Dies)
	row.FusedDetected = infected.FusedDetected
	row.FusedFP = clean.FusedDetected
	row.PowerDetected = infected.Detected
	row.PowerFP = clean.Detected
	row.Unstable = infected.Unstable + clean.Unstable

	scores := func(lr *LotReport, f func(DieResult) float64) []float64 {
		out := make([]float64, 0, len(lr.Dies))
		for _, d := range lr.Dies {
			out = append(out, f(d))
		}
		return out
	}
	powerOf := func(d DieResult) float64 { return d.FinalMag }
	delayOf := func(d DieResult) float64 { return d.DelayMag }
	fusedOf := func(d DieResult) float64 { return d.FusedScore }
	row.PowerROC = ROCFromScores(scores(infected, powerOf), scores(clean, powerOf))
	row.DelayROC = ROCFromScores(scores(infected, delayOf), scores(clean, delayOf))
	row.FusedROC = ROCFromScores(scores(infected, fusedOf), scores(clean, fusedOf))
	row.PowerAUC = AUC(row.PowerROC)
	row.DelayAUC = AUC(row.DelayROC)
	row.FusedAUC = AUC(row.FusedROC)
	return row, nil
}

// RunFusionTable evaluates every fusion preset on the first benchmark
// case. Presets run serially — the dies inside each lot already fan
// out over cfg.Workers — and each row derives all randomness from the
// chip seed and its lot salts, so the table is bit-reproducible.
func RunFusionTable(cfg ExperimentConfig) ([]FusionRow, error) {
	return RunFusionTableContext(context.Background(), cfg)
}

// RunFusionTableContext is RunFusionTable under a run context (same
// cancellation contract as RunFusionRowContext).
func RunFusionTableContext(ctx context.Context, cfg ExperimentConfig) ([]FusionRow, error) {
	c := trust.Cases()[0]
	rows := make([]FusionRow, 0, len(FusionPresets))
	for _, preset := range FusionPresets {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		row, err := RunFusionRowContext(ctx, preset, c, cfg, 0, 0)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// The AUC columns ride the NaN-safe carrier: a channel that produced
// no finite score on either held-out lot has no curve, and its AUC is
// NaN rather than a fabricated number.
func (r FusionRow) MarshalJSON() ([]byte, error) {
	type alias FusionRow
	return json.Marshal(struct {
		alias
		PowerAUC nanf `json:"power_auc"`
		DelayAUC nanf `json:"delay_auc"`
		FusedAUC nanf `json:"fused_auc"`
	}{alias(r), nanf(r.PowerAUC), nanf(r.DelayAUC), nanf(r.FusedAUC)})
}

func (r *FusionRow) UnmarshalJSON(b []byte) error {
	type alias FusionRow
	var w struct {
		alias
		PowerAUC nanf `json:"power_auc"`
		DelayAUC nanf `json:"delay_auc"`
		FusedAUC nanf `json:"fused_auc"`
	}
	if err := json.Unmarshal(b, &w); err != nil {
		return err
	}
	*r = FusionRow(w.alias)
	r.PowerAUC = float64(w.PowerAUC)
	r.DelayAUC = float64(w.DelayAUC)
	r.FusedAUC = float64(w.FusedAUC)
	return nil
}
