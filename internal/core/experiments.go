package core

import (
	"context"
	"fmt"

	"superpose/internal/atpg"
	"superpose/internal/netlist"
	"superpose/internal/parallel"
	"superpose/internal/power"
	"superpose/internal/scan"
	"superpose/internal/stats"
	"superpose/internal/tester"
	"superpose/internal/trojan"
	"superpose/internal/trust"
)

// ExperimentConfig parameterizes the reproduction of the paper's
// evaluation (§V).
type ExperimentConfig struct {
	// Scale sizes the benchmark hosts (1.0 = published gate counts;
	// smaller values trade fidelity of the ancillary-activity ratios for
	// runtime). Default 0.25.
	Scale float64
	// Varsigma is the manufacturing intra-die variation (3σ_intra) of the
	// simulated dies. Default 0.15.
	Varsigma float64
	// ChipSeed selects the die; fixed by default for reproducibility.
	ChipSeed uint64
	// NumChains is the scan configuration. Default 4.
	NumChains int
	// ATPG tunes seed-pattern generation. The default samples the fault
	// list (seed patterns, not manufacturing coverage, are the goal).
	ATPG atpg.Options
	// MaxSeeds bounds the adaptive stage (default 3).
	MaxSeeds int
	// MaxPairs bounds the strategic stage (0 = detector default). The
	// robustness table widens it: tester faults perturb the pair
	// significance ranking, so a narrow top-k can drop the genuinely
	// strongest pair that a clean tester would have ranked first.
	MaxPairs int
	// Workers bounds the fan-out of the experiment harness (per Table I
	// case, per clean control, per robustness cell, per σ-sweep die) and
	// propagates to the ATPG fault simulation: 0 means one worker per
	// CPU, 1 the exact legacy serial path. Results are bit-identical at
	// every worker count.
	Workers int
}

func (c ExperimentConfig) withDefaults() ExperimentConfig {
	if c.Scale == 0 {
		c.Scale = 0.25
	}
	if c.Varsigma == 0 {
		c.Varsigma = 0.15
	}
	if c.ChipSeed == 0 {
		c.ChipSeed = 0xC0FFEE
	}
	if c.NumChains == 0 {
		c.NumChains = 4
	}
	if c.ATPG.RandomPatterns == 0 {
		c.ATPG.RandomPatterns = 32
	}
	if c.ATPG.MaxFaults == 0 {
		c.ATPG.MaxFaults = 40
	}
	if c.ATPG.FaultSample == 0 {
		c.ATPG.FaultSample = 120
	}
	if c.ATPG.Seed == 0 {
		c.ATPG.Seed = 7
	}
	if c.MaxSeeds == 0 {
		c.MaxSeeds = 3
	}
	if c.ATPG.Workers == 0 {
		// The harness's worker setting governs the ATPG fault simulation
		// too, so Workers=1 pins the whole run to the legacy serial path.
		c.ATPG.Workers = c.Workers
	}
	return c
}

// TableIRow is one benchmark's row of Table I: the Trojan signal magnitude
// (RPD / S-RPD) and Trojan-to-Circuit Activity at each stage of the
// methodology, plus the magnification ratios.
type TableIRow struct {
	Case string

	ATPGRPD, ATPGTCA            float64
	AdaptiveRPD, AdaptiveTCA    float64
	SuperSRPD, SuperTCA         float64
	StrategicSRPD, StrategicTCA float64

	MagOverATPG, MagOverAdaptive float64
}

// RunTableICase reproduces one row of Table I.
func RunTableICase(c trust.Case, cfg ExperimentConfig) (TableIRow, error) {
	return RunTableICaseContext(context.Background(), c, cfg)
}

// RunTableICaseContext is RunTableICase under a run context (see
// DetectContext for the cancellation contract).
func RunTableICaseContext(ctx context.Context, c trust.Case, cfg ExperimentConfig) (TableIRow, error) {
	cfg = cfg.withDefaults()
	inst, err := trust.Build(c, cfg.Scale)
	if err != nil {
		return TableIRow{}, err
	}
	lib := power.SAED90Like()
	chip := power.Manufacture(inst.Infected, lib, power.ThreeSigmaIntra(cfg.Varsigma), cfg.ChipSeed)
	dev := NewDevice(chip, cfg.NumChains, scan.LOS)

	rep, err := DetectContext(ctx, inst.Host, lib, dev, Config{
		NumChains: cfg.NumChains,
		ATPG:      cfg.ATPG,
		MaxSeeds:  cfg.MaxSeeds,
		Varsigma:  cfg.Varsigma,
	})
	if err != nil {
		return TableIRow{}, err
	}

	isTroj := inst.IsTrojanGate
	row := TableIRow{
		Case:        c.String(),
		ATPGRPD:     abs(rep.SeedReading.RPD),
		ATPGTCA:     TCA(dev.GroundTruthToggles(rep.SeedPattern), isTroj),
		AdaptiveRPD: abs(rep.AdaptiveReading.RPD),
		AdaptiveTCA: TCA(dev.GroundTruthToggles(rep.Adaptive.BestPattern()), isTroj),
	}
	if rep.HasPair {
		row.SuperSRPD = abs(rep.Superposition.SRPD)
		row.SuperTCA = PairTCA(
			dev.GroundTruthToggles(rep.Superposition.A),
			dev.GroundTruthToggles(rep.Superposition.B), isTroj)
		row.StrategicSRPD = abs(rep.Strategic.Final.SRPD)
		row.StrategicTCA = PairTCA(
			dev.GroundTruthToggles(rep.Strategic.Final.A),
			dev.GroundTruthToggles(rep.Strategic.Final.B), isTroj)
	}
	if row.ATPGRPD > 0 {
		row.MagOverATPG = row.StrategicSRPD / row.ATPGRPD
	}
	if row.AdaptiveRPD > 0 {
		row.MagOverAdaptive = row.StrategicSRPD / row.AdaptiveRPD
	}
	return row, nil
}

// RunTableI reproduces all five rows of Table I, fanning the independent
// cases out over cfg.Workers. Each case builds its own benchmark
// instance, die and device, so rows are bit-identical at any worker
// count and arrive in the canonical case order.
func RunTableI(cfg ExperimentConfig) ([]TableIRow, error) {
	return RunTableIContext(context.Background(), cfg)
}

// RunTableIContext is RunTableI under a run context: cancellation stops
// the per-case dispatch and aborts in-flight cases mid-climb.
func RunTableIContext(ctx context.Context, cfg ExperimentConfig) ([]TableIRow, error) {
	cases := trust.Cases()
	return parallel.Map(ctx, cfg.Workers, len(cases),
		func(i int) (TableIRow, error) {
			row, err := RunTableICaseContext(ctx, cases[i], cfg)
			if err != nil {
				return TableIRow{}, fmt.Errorf("case %s: %w", cases[i], err)
			}
			return row, nil
		})
}

// ControlRow is one clean-device control measurement: the pipeline run
// against an uninfected die of the same benchmark, reporting the spurious
// signal level the method reaches on nothing. Not part of the paper's
// evaluation, but the false-positive side of its claims.
type ControlRow struct {
	Case      string
	FinalSRPD float64
	Detected  bool
}

// RunCleanControls runs the full pipeline against clean dies of every
// benchmark host with the same configuration as RunTableI. The host list
// is deduplicated up front (one clean control per host, in canonical
// case order), then fanned out over cfg.Workers.
func RunCleanControls(cfg ExperimentConfig) ([]ControlRow, error) {
	return RunCleanControlsContext(context.Background(), cfg)
}

// RunCleanControlsContext is RunCleanControls under a run context (same
// cancellation contract as RunTableIContext).
func RunCleanControlsContext(ctx context.Context, cfg ExperimentConfig) ([]ControlRow, error) {
	cfg = cfg.withDefaults()
	var hosts []trust.Case
	seen := map[string]bool{}
	for _, c := range trust.Cases() {
		if seen[c.Benchmark] {
			continue
		}
		seen[c.Benchmark] = true
		hosts = append(hosts, c)
	}
	return parallel.Map(ctx, cfg.Workers, len(hosts),
		func(i int) (ControlRow, error) {
			c := hosts[i]
			inst, err := trust.Build(c, cfg.Scale)
			if err != nil {
				return ControlRow{}, err
			}
			lib := power.SAED90Like()
			chip := power.Manufacture(inst.Host, lib, power.ThreeSigmaIntra(cfg.Varsigma), cfg.ChipSeed+1)
			dev := NewDevice(chip, cfg.NumChains, scan.LOS)
			rep, err := DetectContext(ctx, inst.Host, lib, dev, Config{
				NumChains: cfg.NumChains,
				ATPG:      cfg.ATPG,
				MaxSeeds:  cfg.MaxSeeds,
				Varsigma:  cfg.Varsigma,
			})
			if err != nil {
				return ControlRow{}, fmt.Errorf("control %s: %w", c.Benchmark, err)
			}
			return ControlRow{
				Case:      c.Benchmark + "-clean",
				FinalSRPD: abs(rep.FinalSRPD),
				Detected:  rep.Detected,
			}, nil
		})
}

// TableIIVarsigmas are the intra-die magnitudes of Table II's columns.
var TableIIVarsigmas = []float64{0.05, 0.10, 0.15, 0.20, 0.25}

// TableIIRow is one benchmark's detection likelihood under each intra-die
// variation magnitude, given its achieved S-RPD.
type TableIIRow struct {
	Case          string
	AchievedSRPD  float64
	Probabilities []float64 // parallel to TableIIVarsigmas
}

// TableIIFromSRPD evaluates one Table II row from an achieved S-RPD.
func TableIIFromSRPD(caseName string, srpd float64) TableIIRow {
	row := TableIIRow{Case: caseName, AchievedSRPD: srpd}
	for _, v := range TableIIVarsigmas {
		row.Probabilities = append(row.Probabilities, DetectionProbability(srpd, v))
	}
	return row
}

// RunTableII reproduces Table II from a set of Table I rows (the achieved
// S-RPD of the strategic stage).
func RunTableII(rows []TableIRow) []TableIIRow {
	var out []TableIIRow
	for _, r := range rows {
		out = append(out, TableIIFromSRPD(r.Case, r.StrategicSRPD))
	}
	return out
}

// PaperTableII returns Table II exactly as printed in the paper (achieved
// S-RPD per case), for direct comparison of the analytic machinery.
func PaperTableII() []TableIIRow {
	paper := []struct {
		name string
		srpd float64
	}{
		{"s35932-T200", 0.195},
		{"s35932-T300", 0.259},
		{"s38417-T100", 0.136},
		{"s38417-T200", 0.218},
		{"s38584-T100", 0.210},
	}
	var out []TableIIRow
	for _, p := range paper {
		out = append(out, TableIIFromSRPD(p.name, p.srpd))
	}
	return out
}

// Figure1Demo is the worked example of Fig. 1: a launch transition
// propagating through nine non-Trojan gates into a Trojan AND whose other
// input is a static scan-cell value. The pattern pair differs only in
// that static value — TPa activates the Trojan gate, TPb deactivates it —
// so the benign activity overlaps perfectly and the superposition residual
// equals the full Trojan switching energy.
type Figure1Demo struct {
	Instance *trojan.Instance
	TPa, TPb *scan.Pattern

	ObservedA, ObservedB float64
	NominalA, NominalB   float64
	Residual             float64 // (POa-POb)-(PNa-PNb): the exposed Trojan signal
	TrojanEnergy         float64 // ground truth: energy of the Trojan gate toggles under TPa
	InducedEnergy        float64 // benign gates toggled only because the payload fired
	UniqueBenign         int     // golden-model unique gates (0 in the ideal case)
}

// BuildFigure1 constructs and evaluates the Fig. 1 demonstration with no
// process variation (the figure illustrates the mechanism, not the noise).
func BuildFigure1() (*Figure1Demo, error) {
	b := netlist.NewBuilder("figure1")
	// Launch cell chain: x0 (scan-in, pinned) then x1; loading "01" fires
	// a transition from x1.
	if _, err := b.AddDFF("x0", "dx0"); err != nil {
		return nil, err
	}
	if _, err := b.AddDFF("x1", "dx1"); err != nil {
		return nil, err
	}
	// The non-transitioning cell, alone on its own chain: its loaded value
	// is static through the launch.
	if _, err := b.AddDFF("y", "dy"); err != nil {
		return nil, err
	}
	// Nine non-Trojan gates between the launching cell and the Trojan.
	prev := "x1"
	for i := 1; i <= 9; i++ {
		name := fmt.Sprintf("p%d", i)
		typ := netlist.Buf
		if i%2 == 0 {
			typ = netlist.Not
		}
		if _, err := b.AddGate(name, typ, prev); err != nil {
			return nil, err
		}
		prev = name
	}
	// A static net for the payload to sit on, plus D-pin closures.
	if _, err := b.AddGate("w", netlist.Or, "y", "x0"); err != nil {
		return nil, err
	}
	if _, err := b.AddGate("dx0", netlist.Buf, "p9"); err != nil {
		return nil, err
	}
	if _, err := b.AddGate("dx1", netlist.Buf, "w"); err != nil {
		return nil, err
	}
	if _, err := b.AddGate("dy", netlist.Buf, "y"); err != nil {
		return nil, err
	}
	b.MarkOutput("p9")
	b.MarkOutput("w")
	host, err := b.Build()
	if err != nil {
		return nil, err
	}

	inst, err := trojan.Insert(host, trojan.Spec{
		Name:            "fig1",
		TriggerNets:     []string{"p5", "y"},
		TriggerPolarity: []bool{true, true},
		VictimNet:       "w",
		TreeArity:       2,
	})
	if err != nil {
		return nil, err
	}

	lib := power.SAED90Like()
	chip := power.Manufacture(inst.Infected, lib, power.Variation{}, 1)
	dev := NewDevice(chip, 2, scan.LOS)
	ev := NewEvaluator(host, lib, dev, 2, scan.LOS)

	// Chains: chain 0 = {x0, x1}, chain 1 = {y}.
	tpa := ev.Chains().NewPattern()
	tpa.Scan[0][0] = false
	tpa.Scan[0][1] = true // load "01": launch from x1
	tpa.Scan[1][0] = true // y = 1: Trojan AND sensitized
	tpb := tpa.Clone()
	tpb.Scan[1][0] = false // y = 0: Trojan AND blocked

	pa := ev.AnalyzePair(tpa, tpb)
	demo := &Figure1Demo{
		Instance:  inst,
		TPa:       tpa,
		TPb:       tpb,
		ObservedA: pa.ObservedA, ObservedB: pa.ObservedB,
		NominalA: pa.NominalA, NominalB: pa.NominalB,
		Residual:     (pa.ObservedA - pa.ObservedB) - (pa.NominalA - pa.NominalB),
		UniqueBenign: pa.AUniqueCount + pa.BUniqueCount,
	}
	// Ground truth decomposition: Trojan gates, plus benign gates that
	// toggle only because the payload corrupted their input (the golden
	// model predicts them silent) — both are Trojan-caused signal.
	goldenSet := make(map[int]bool)
	for _, id := range ev.GoldenToggles(tpa) {
		goldenSet[id] = true
	}
	for _, id := range dev.GroundTruthToggles(tpa) {
		switch {
		case inst.IsTrojanGate(id):
			demo.TrojanEnergy += chip.EffectiveOf(id)
		case !goldenSet[id]:
			demo.InducedEnergy += chip.EffectiveOf(id)
		}
	}
	return demo, nil
}

// Figure2Row is one line of the Fig. 2 modification suite.
type Figure2Row struct {
	Num      int
	Name     string
	Original string
	Updated  string
	Kind     ModKind
}

// Figure2Rows reproduces the Fig. 2 table: each strategic modification
// demonstrated on the paper's own bit strings, with the classification
// computed by ClassifyFlip (not hard-coded).
func Figure2Rows() []Figure2Row {
	demo := []struct {
		num      int
		name     string
		original string
		flip     int
	}{
		{1, "Introduce Two Transitions", "00000", 2},
		{1, "Eliminate Two Transitions", "11011", 2},
		{2, "Move Transition Right", "000111", 3},
		{2, "Move Transition Left", "000111", 2},
		{3, "Introduce Single Transition", "11111", 0},
		{3, "Eliminate Single Transition", "00001", 4},
	}
	var rows []Figure2Row
	for _, d := range demo {
		p := &scan.Pattern{Scan: [][]bool{bitsOf(d.original)}}
		kind := ClassifyFlip(p, 0, d.flip)
		updated := []byte(d.original)
		if updated[d.flip] == '0' {
			updated[d.flip] = '1'
		} else {
			updated[d.flip] = '0'
		}
		rows = append(rows, Figure2Row{
			Num: d.num, Name: d.name,
			Original: d.original, Updated: string(updated),
			Kind: kind,
		})
	}
	return rows
}

func bitsOf(s string) []bool {
	out := make([]bool, len(s))
	for i, c := range s {
		out[i] = c == '1'
	}
	return out
}

// RobustnessRegimes are the tester fault regimes of the robustness table
// (EXPERIMENTS.md): named tester.Preset configurations of increasing
// hostility.
var RobustnessRegimes = []string{"clean", "spikes", "drift", "combined"}

// RobustnessPolicies pairs the acquisition policies the robustness table
// compares under each fault regime.
func RobustnessPolicies() []struct {
	Name   string
	Policy AcquisitionPolicy
} {
	return []struct {
		Name   string
		Policy AcquisitionPolicy
	}{
		{"naive", NaiveAcquisition()},
		{"robust", RobustAcquisition()},
	}
}

// RobustnessRow is one (fault regime × acquisition policy) cell of the
// robustness table: the detection rate over the five infected benchmark
// cases, the false-positive rate over the clean hosts, and the
// acquisition layer's accounting.
type RobustnessRow struct {
	Regime string
	Policy string

	Detected int // infected dies flagged
	Infected int // infected dies run
	FalsePos int // clean dies flagged
	Clean    int // clean dies run
	Unstable int // dies whose final signal never stabilized

	MeanSRPD    float64 // mean |S-RPD| over stable infected dies
	Acquisition AcquisitionStats
}

// String renders the row compactly.
func (r RobustnessRow) String() string {
	return fmt.Sprintf("%-8s %-6s  TPR %d/%d  FPR %d/%d  unstable %d  |S-RPD| %.4f",
		r.Regime, r.Policy, r.Detected, r.Infected, r.FalsePos, r.Clean, r.Unstable, r.MeanSRPD)
}

// robustnessDetect runs one die under a tester fault regime and policy.
func robustnessDetect(ctx context.Context, golden *netlist.Netlist, lib *power.Library, chip *power.Chip,
	regime string, faultSeed uint64, policy AcquisitionPolicy, cfg ExperimentConfig) (*Report, error) {
	dev := NewDevice(chip, cfg.NumChains, scan.LOS)
	dev.SetAcquisition(policy)
	tc, err := tester.Preset(regime, faultSeed)
	if err != nil {
		return nil, err
	}
	if tc.Enabled() {
		dev.SetFaultModel(tester.New(tc))
	}
	return DetectContext(ctx, golden, lib, dev, Config{
		NumChains:   cfg.NumChains,
		ATPG:        cfg.ATPG,
		MaxSeeds:    cfg.MaxSeeds,
		MaxPairs:    cfg.MaxPairs,
		Varsigma:    cfg.Varsigma,
		Acquisition: policy,
	})
}

// RunRobustnessRow evaluates one fault regime under one acquisition
// policy: every infected benchmark case on its own die, plus one clean
// die per benchmark host. Fault realizations are derived deterministically
// from the regime, the policy and the case index, so the table is
// bit-reproducible.
func RunRobustnessRow(regime, policyName string, policy AcquisitionPolicy, cfg ExperimentConfig) (RobustnessRow, error) {
	return RunRobustnessRowContext(context.Background(), regime, policyName, policy, cfg)
}

// RunRobustnessRowContext is RunRobustnessRow under a run context: the
// serial per-case loop checks ctx between dies and each die's Detect
// aborts mid-climb on cancellation.
func RunRobustnessRowContext(ctx context.Context, regime, policyName string, policy AcquisitionPolicy, cfg ExperimentConfig) (RobustnessRow, error) {
	cfg = cfg.withDefaults()
	lib := power.SAED90Like()
	row := RobustnessRow{Regime: regime, Policy: policyName}

	var srpdSum float64
	var srpdN int
	for i, c := range trust.Cases() {
		if err := ctx.Err(); err != nil {
			return row, err
		}
		inst, err := trust.Build(c, cfg.Scale)
		if err != nil {
			return row, fmt.Errorf("case %s: %w", c, err)
		}
		chip := power.Manufacture(inst.Infected, lib, power.ThreeSigmaIntra(cfg.Varsigma), cfg.ChipSeed)
		faultSeed := cfg.ChipSeed ^ (uint64(i+1) * 0x9E3779B97F4A7C15)
		rep, err := robustnessDetect(ctx, inst.Host, lib, chip, regime, faultSeed, policy, cfg)
		if err != nil {
			return row, fmt.Errorf("case %s: %w", c, err)
		}
		row.Infected++
		if rep.Detected {
			row.Detected++
		}
		if mag := abs(rep.FinalSRPD); mag != mag { // NaN: unstable die
			row.Unstable++
		} else {
			srpdSum += mag
			srpdN++
		}
		row.Acquisition = row.Acquisition.add(rep.Acquisition)
	}
	if srpdN > 0 {
		row.MeanSRPD = srpdSum / float64(srpdN)
	}

	seen := map[string]bool{}
	for i, c := range trust.Cases() {
		if seen[c.Benchmark] {
			continue
		}
		seen[c.Benchmark] = true
		if err := ctx.Err(); err != nil {
			return row, err
		}
		inst, err := trust.Build(c, cfg.Scale)
		if err != nil {
			return row, fmt.Errorf("control %s: %w", c.Benchmark, err)
		}
		chip := power.Manufacture(inst.Host, lib, power.ThreeSigmaIntra(cfg.Varsigma), cfg.ChipSeed+1)
		faultSeed := cfg.ChipSeed ^ (uint64(i+101) * 0x9E3779B97F4A7C15)
		rep, err := robustnessDetect(ctx, inst.Host, lib, chip, regime, faultSeed, policy, cfg)
		if err != nil {
			return row, fmt.Errorf("control %s: %w", c.Benchmark, err)
		}
		row.Clean++
		if rep.Detected {
			row.FalsePos++
		}
		if mag := abs(rep.FinalSRPD); mag != mag {
			row.Unstable++
		}
		row.Acquisition = row.Acquisition.add(rep.Acquisition)
	}
	return row, nil
}

// SigmaSweepRow is one intra-die-variation magnitude of the σ-sweep: the
// same Trojan hunted on `Dies` fresh dies drawn at that magnitude.
type SigmaSweepRow struct {
	Varsigma float64
	Dies     int
	Detected int
	Unstable int           // dies whose final signal never stabilized
	SRPD     stats.Summary // |S-RPD| across stable dies
	PDetect  float64       // Eq. 3 likelihood of the mean achieved signal
}

// RunSigmaSweep studies detection robustness across the process-variation
// space (the Table II axis, run for real rather than analytically): the
// case's Trojan is hunted on `dies` dies per magnitude in `varsigmas`,
// with both the manufactured variation and the verdict bound set to that
// magnitude. Seed patterns are generated once (they depend only on the
// golden netlist); the σ×die grid then fans out over cfg.Workers. Every
// die's chip seed is parallel.Mix(cfg.ChipSeed, grid index), so the sweep
// is bit-identical at any worker count.
func RunSigmaSweep(c trust.Case, cfg ExperimentConfig, varsigmas []float64, dies int) ([]SigmaSweepRow, error) {
	return RunSigmaSweepContext(context.Background(), c, cfg, varsigmas, dies)
}

// RunSigmaSweepContext is RunSigmaSweep under a run context: cancellation
// stops the σ×die grid dispatch and aborts in-flight dies mid-climb.
func RunSigmaSweepContext(ctx context.Context, c trust.Case, cfg ExperimentConfig, varsigmas []float64, dies int) ([]SigmaSweepRow, error) {
	cfg = cfg.withDefaults()
	if len(varsigmas) == 0 {
		varsigmas = TableIIVarsigmas
	}
	if dies < 1 {
		dies = 1
	}
	inst, err := trust.Build(c, cfg.Scale)
	if err != nil {
		return nil, fmt.Errorf("sweep %s: %w", c, err)
	}
	lib := power.SAED90Like()
	base, err := WithSharedSeeds(inst.Host, Config{
		NumChains: cfg.NumChains,
		ATPG:      cfg.ATPG,
		MaxSeeds:  cfg.MaxSeeds,
		MaxPairs:  cfg.MaxPairs,
	})
	if err != nil {
		return nil, fmt.Errorf("sweep %s: seeds: %w", c, err)
	}

	type dieOutcome struct {
		Mag      float64
		Detected bool
	}
	outcomes, err := parallel.Map(ctx, cfg.Workers, len(varsigmas)*dies,
		func(i int) (dieOutcome, error) {
			v := varsigmas[i/dies]
			dcfg := base
			dcfg.Varsigma = v
			chip := power.Manufacture(inst.Infected, lib, power.ThreeSigmaIntra(v), parallel.Mix(cfg.ChipSeed, i))
			dev := NewDevice(chip, cfg.NumChains, scan.LOS)
			rep, err := DetectContext(ctx, inst.Host, lib, dev, dcfg)
			if err != nil {
				return dieOutcome{}, fmt.Errorf("sweep %s σ=%g die %d: %w", c, v, i%dies, err)
			}
			return dieOutcome{Mag: abs(rep.FinalSRPD), Detected: rep.Detected}, nil
		})
	if err != nil {
		return nil, err
	}

	var rows []SigmaSweepRow
	for vi, v := range varsigmas {
		row := SigmaSweepRow{Varsigma: v, Dies: dies}
		var stable []float64
		for di := 0; di < dies; di++ {
			o := outcomes[vi*dies+di]
			if o.Detected {
				row.Detected++
			}
			if o.Mag != o.Mag { // NaN: the die never stabilized
				row.Unstable++
				continue
			}
			stable = append(stable, o.Mag)
		}
		row.SRPD = stats.Summarize(stable)
		row.PDetect = DetectionProbability(row.SRPD.Mean, v)
		rows = append(rows, row)
	}
	return rows, nil
}

// add accumulates acquisition counters (helper for the robustness table).
func (s AcquisitionStats) add(o AcquisitionStats) AcquisitionStats {
	return AcquisitionStats{
		Readings: s.Readings + o.Readings,
		Passes:   s.Passes + o.Passes,
		Raw:      s.Raw + o.Raw,
		Dropped:  s.Dropped + o.Dropped,
		Rejected: s.Rejected + o.Rejected,
		Latched:  s.Latched + o.Latched,
		Retries:  s.Retries + o.Retries,
		Unstable: s.Unstable + o.Unstable,
	}
}

// RunRobustnessTable evaluates every fault regime under both acquisition
// policies: the table showing naive single-shot averaging collapsing
// under tester pathologies while the robust policy restores the
// clean-tester verdicts. The (regime × policy) cells are independent —
// every cell builds its own dies and fault realizations from the regime
// and case index alone — so they fan out over cfg.Workers in row-major
// order.
func RunRobustnessTable(cfg ExperimentConfig) ([]RobustnessRow, error) {
	return RunRobustnessTableContext(context.Background(), cfg)
}

// RunRobustnessTableContext is RunRobustnessTable under a run context
// (same cancellation contract as RunTableIContext).
func RunRobustnessTableContext(ctx context.Context, cfg ExperimentConfig) ([]RobustnessRow, error) {
	policies := RobustnessPolicies()
	n := len(RobustnessRegimes) * len(policies)
	return parallel.Map(ctx, cfg.Workers, n,
		func(i int) (RobustnessRow, error) {
			regime := RobustnessRegimes[i/len(policies)]
			p := policies[i%len(policies)]
			row, err := RunRobustnessRowContext(ctx, regime, p.Name, p.Policy, cfg)
			if err != nil {
				return RobustnessRow{}, fmt.Errorf("robustness %s/%s: %w", regime, p.Name, err)
			}
			return row, nil
		})
}
