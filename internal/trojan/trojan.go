// Package trojan models foundry-inserted hardware Trojans in the
// trigger/payload structure of the Trust-Hub benchmarks (paper §II-A): a
// trigger tree ANDs together rare-valued internal nets (so chance
// functional activation is near impossible) and, when satisfied, a payload
// gate corrupts a victim net.
//
// The package provides the attacker's half of the experiment: rare-net
// analysis to place triggers, netlist insertion, and ground-truth queries
// (which gates are Trojan gates, is the trigger active) that the
// evaluation metrics — but never the detection flow itself — may consult.
package trojan

import (
	"fmt"
	"sort"

	"superpose/internal/logic"
	"superpose/internal/netlist"
	"superpose/internal/sim"
)

// Spec describes a Trojan to insert into a host netlist.
type Spec struct {
	Name string
	// Trigger taps: host net names and the rare value required on each.
	TriggerNets     []string
	TriggerPolarity []bool // true: net must be 1 to fire
	// VictimNet is the host net whose readers the payload corrupts.
	VictimNet string
	// ExtraVictims adds further payload XORs gated by the same trigger
	// (some Trust-Hub variants corrupt several bits, e.g. s35932-T300's
	// two payload taps). All victim constraints apply to each.
	ExtraVictims []string
	// TreeArity is the AND-tree fanin (2..4 typical). Default 2.
	TreeArity int
	// SequentialDepth, when positive, makes the Trojan sequential: the
	// combinational rare-event detector feeds a SequentialDepth-bit
	// counter of hidden (non-scan) flip-flops, and the payload fires only
	// at terminal count — the time-bomb structure of [17]/[23]. Zero (the
	// default) is the paper's combinational model.
	SequentialDepth int
}

// Victims returns all payload targets (primary plus extras).
func (s *Spec) Victims() []string {
	return append([]string{s.VictimNet}, s.ExtraVictims...)
}

// Validate checks internal consistency.
func (s *Spec) Validate() error {
	if len(s.TriggerNets) == 0 {
		return fmt.Errorf("trojan %q: empty trigger", s.Name)
	}
	if len(s.TriggerNets) != len(s.TriggerPolarity) {
		return fmt.Errorf("trojan %q: %d trigger nets but %d polarities",
			s.Name, len(s.TriggerNets), len(s.TriggerPolarity))
	}
	if s.VictimNet == "" {
		return fmt.Errorf("trojan %q: no victim net", s.Name)
	}
	if s.TreeArity != 0 && s.TreeArity < 2 {
		return fmt.Errorf("trojan %q: tree arity %d < 2", s.Name, s.TreeArity)
	}
	seen := make(map[string]bool)
	for _, v := range s.Victims() {
		if v == "" {
			return fmt.Errorf("trojan %q: empty victim net", s.Name)
		}
		if seen[v] {
			return fmt.Errorf("trojan %q: victim %q listed twice", s.Name, v)
		}
		seen[v] = true
		for _, t := range s.TriggerNets {
			if t == v {
				return fmt.Errorf("trojan %q: victim %q is also a trigger tap (combinational loop)",
					s.Name, t)
			}
		}
	}
	return nil
}

// Instance is an inserted Trojan: the infected netlist plus ground truth.
// Gate IDs of the host circuit are preserved in the infected netlist
// (Trojan gates are appended), so toggle sets computed on either netlist
// agree on the benign gates — the property the whole side-channel
// evaluation rests on.
type Instance struct {
	Spec     Spec
	Host     *netlist.Netlist // the Trojan-free design (defender's view)
	Infected *netlist.Netlist // the manufactured reality

	TriggerOut  int   // infected-netlist ID of the final trigger net
	PayloadOut  int   // infected-netlist ID of the primary payload XOR
	PayloadOuts []int // all payload XOR IDs (multi-victim Trojans)
	// EventOut is the combinational rare-event detector's net. For a
	// combinational Trojan it equals TriggerOut; for a sequential one the
	// counter sits between them.
	EventOut int
	// CounterFFs lists the hidden counter cells of a sequential Trojan.
	CounterFFs  []int
	TrojanGates []int // all inserted gate IDs (inverters, tree, payload)

	isTrojan []bool // indexed by infected gate ID
}

// Insert builds the infected netlist from a host and a spec.
func Insert(host *netlist.Netlist, spec Spec) (*Instance, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	arity := spec.TreeArity
	if arity == 0 {
		arity = 2
	}
	b := netlist.Clone(host)
	inst := &Instance{Spec: spec, Host: host}

	addGate := func(prefix string, typ netlist.GateType, fanins ...string) (string, error) {
		name := b.FreshName(fmt.Sprintf("troj_%s_%s", spec.Name, prefix))
		if _, err := b.AddGate(name, typ, fanins...); err != nil {
			return "", err
		}
		return name, nil
	}

	// Leaf conditioning: invert negative-polarity taps.
	var level []string
	for i, tap := range spec.TriggerNets {
		if !b.Has(tap) {
			return nil, fmt.Errorf("trojan %q: trigger net %q not in host", spec.Name, tap)
		}
		if spec.TriggerPolarity[i] {
			level = append(level, tap)
			continue
		}
		inv, err := addGate(fmt.Sprintf("inv%d", i), netlist.Not, tap)
		if err != nil {
			return nil, err
		}
		level = append(level, inv)
	}

	// AND-tree reduction. A single positive tap still gets a buffer so the
	// trigger net is always a Trojan-owned gate.
	treeIdx := 0
	for len(level) > 1 {
		var next []string
		for start := 0; start < len(level); start += arity {
			end := start + arity
			if end > len(level) {
				end = len(level)
			}
			group := level[start:end]
			if len(group) == 1 {
				next = append(next, group[0])
				continue
			}
			g, err := addGate(fmt.Sprintf("and%d", treeIdx), netlist.And, group...)
			if err != nil {
				return nil, err
			}
			treeIdx++
			next = append(next, g)
		}
		level = next
	}
	trigger := level[0]
	if trigger == spec.TriggerNets[0] { // single positive tap: buffer it
		buf, err := addGate("trig", netlist.Buf, trigger)
		if err != nil {
			return nil, err
		}
		trigger = buf
	}
	event := trigger

	// Sequential stage: a hidden counter of rare-event occurrences. The
	// counter cells are non-scan flip-flops — scan access would expose
	// them — and the trigger only completes at terminal count.
	var counterCells []string
	if spec.SequentialDepth > 0 {
		carry := event
		var bits []string
		for k := 0; k < spec.SequentialDepth; k++ {
			cell := b.FreshName(fmt.Sprintf("troj_%s_cnt%d", spec.Name, k))
			dPin := b.FreshName(fmt.Sprintf("troj_%s_cntd%d", spec.Name, k))
			if _, err := b.AddNonScanDFF(cell, dPin); err != nil {
				return nil, err
			}
			if _, err := b.AddGate(dPin, netlist.Xor, cell, carry); err != nil {
				return nil, err
			}
			if k < spec.SequentialDepth-1 {
				next, err := addGate(fmt.Sprintf("carry%d", k), netlist.And, cell, carry)
				if err != nil {
					return nil, err
				}
				carry = next
			}
			bits = append(bits, cell)
			counterCells = append(counterCells, cell)
		}
		if len(bits) == 1 {
			trigger = bits[0]
		} else {
			full, err := addGate("full", netlist.And, bits...)
			if err != nil {
				return nil, err
			}
			trigger = full
		}
	}

	// Payloads: one XOR per victim, all gated by the same trigger, each
	// spliced into its victim's readers. The only Trojan gates reading
	// host nets are the leaf conditioners and first tree level, and
	// Validate guarantees no victim is a tap, so excluding the payload
	// and trigger nets suffices to avoid loops.
	var payloads []string
	for vi, victim := range spec.Victims() {
		if !b.Has(victim) {
			return nil, fmt.Errorf("trojan %q: victim net %q not in host", spec.Name, victim)
		}
		payload, err := addGate(fmt.Sprintf("payload%d", vi), netlist.Xor, victim, trigger)
		if err != nil {
			return nil, err
		}
		if err := b.RewireReaders(victim, payload, payload, trigger); err != nil {
			return nil, err
		}
		payloads = append(payloads, payload)
	}

	infected, err := b.Build()
	if err != nil {
		return nil, fmt.Errorf("trojan %q: infected netlist invalid: %w", spec.Name, err)
	}
	inst.Infected = infected
	for _, p := range payloads {
		pid, ok := infected.GateID(p)
		if !ok {
			return nil, fmt.Errorf("trojan %q: payload net lost", spec.Name)
		}
		inst.PayloadOuts = append(inst.PayloadOuts, pid)
	}
	payload := payloads[0]

	// Ground truth: every gate beyond the host's count is Trojan logic.
	inst.isTrojan = make([]bool, infected.NumGates())
	for id := host.NumGates(); id < infected.NumGates(); id++ {
		inst.isTrojan[id] = true
		inst.TrojanGates = append(inst.TrojanGates, id)
	}
	tid, ok := infected.GateID(trigger)
	if !ok {
		return nil, fmt.Errorf("trojan %q: trigger net lost", spec.Name)
	}
	inst.TriggerOut = tid
	eid, ok := infected.GateID(event)
	if !ok {
		return nil, fmt.Errorf("trojan %q: event net lost", spec.Name)
	}
	inst.EventOut = eid
	for _, cell := range counterCells {
		cid, ok := infected.GateID(cell)
		if !ok {
			return nil, fmt.Errorf("trojan %q: counter cell lost", spec.Name)
		}
		inst.CounterFFs = append(inst.CounterFFs, cid)
	}
	pid, ok := infected.GateID(payload)
	if !ok {
		return nil, fmt.Errorf("trojan %q: payload net lost", spec.Name)
	}
	inst.PayloadOut = pid
	return inst, nil
}

// IsTrojanGate reports whether infected-netlist gate id is Trojan logic.
func (inst *Instance) IsTrojanGate(id int) bool {
	return id < len(inst.isTrojan) && inst.isTrojan[id]
}

// CountTrojanToggles returns how many gates of a toggle set (infected IDs)
// are Trojan gates.
func (inst *Instance) CountTrojanToggles(toggles []int) int {
	c := 0
	for _, id := range toggles {
		if inst.IsTrojanGate(id) {
			c++
		}
	}
	return c
}

// TriggerActive reports whether the full trigger fires at pattern lane
// `lane` of an infected-netlist evaluation.
func (inst *Instance) TriggerActive(values []logic.Word, lane uint) bool {
	return values[inst.TriggerOut]&(logic.Word(1)<<lane) != 0
}

// ActivationProbability estimates how often the full trigger fires under
// uniformly random stimuli — the attacker's stealth check (a Trojan whose
// trigger fires during ordinary functional test would be caught by plain
// response comparison).
func (inst *Instance) ActivationProbability(numPatterns int, seed uint64) float64 {
	probs := sim.SignalProbabilities(inst.Infected, numPatterns, seed)
	return probs[inst.TriggerOut]
}

// RareNet is one candidate trigger tap.
type RareNet struct {
	ID        int
	Name      string
	Prob      float64 // probability of the net being 1
	RareValue bool    // the less likely value
	Rareness  float64 // min(Prob, 1-Prob)
}

// FindRareNets estimates signal probabilities with numPatterns random
// vectors and returns the internal nets (combinational gates and flip-flop
// outputs, not primary inputs) whose rarer value has probability at most
// maxProb, sorted rarest-first with gate ID as the deterministic
// tie-breaker.
func FindRareNets(n *netlist.Netlist, numPatterns int, seed uint64, maxProb float64) []RareNet {
	probs := sim.SignalProbabilities(n, numPatterns, seed)
	var out []RareNet
	for id, g := range n.Gates {
		if g.Type == netlist.Input {
			continue
		}
		p := probs[id]
		// The rare value is the one that seldom occurs: 1 when p is small.
		r := RareNet{ID: id, Name: n.NameOf(id), Prob: p, RareValue: p < 0.5}
		if r.RareValue {
			r.Rareness = p
		} else {
			r.Rareness = 1 - p
		}
		if r.Rareness <= maxProb {
			out = append(out, r)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Rareness != out[j].Rareness {
			return out[i].Rareness < out[j].Rareness
		}
		return out[i].ID < out[j].ID
	})
	return out
}

// TapAncestors returns, per net, whether the net lies in the combinational
// transitive fan-in cone of any of the named taps (taps included). A
// payload victim inside this cone would make the trigger depend on the
// payload and create a combinational cycle, so victim selection must
// avoid it. Traversal stops at sources: feedback through a flip-flop is
// sequential and harmless.
func TapAncestors(n *netlist.Netlist, taps []string) ([]bool, error) {
	mark := make([]bool, n.NumGates())
	var stack []int
	for _, tap := range taps {
		id, ok := n.GateID(tap)
		if !ok {
			return nil, fmt.Errorf("trojan: tap %q not in netlist", tap)
		}
		if !mark[id] {
			mark[id] = true
			stack = append(stack, id)
		}
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if n.Gates[id].Type.IsSource() {
			continue
		}
		for _, f := range n.Gates[id].Fanin {
			if !mark[f] {
				mark[f] = true
				stack = append(stack, f)
			}
		}
	}
	return mark, nil
}

// BuildSpec assembles a Spec from rare-net analysis: the k rarest nets
// become trigger taps (required at their rare value) and victim selects
// the payload target by name. Taps equal to the victim are skipped.
func BuildSpec(name string, rare []RareNet, k int, victim string) (Spec, error) {
	s := Spec{Name: name, VictimNet: victim, TreeArity: 2}
	for _, r := range rare {
		if len(s.TriggerNets) == k {
			break
		}
		if r.Name == victim {
			continue
		}
		s.TriggerNets = append(s.TriggerNets, r.Name)
		s.TriggerPolarity = append(s.TriggerPolarity, r.RareValue)
	}
	if len(s.TriggerNets) < k {
		return Spec{}, fmt.Errorf("trojan %q: only %d of %d rare taps available", name, len(s.TriggerNets), k)
	}
	return s, s.Validate()
}
