package trojan

import (
	"strings"
	"testing"

	"superpose/internal/bench"
	"superpose/internal/logic"
	"superpose/internal/netlist"
	"superpose/internal/scan"
	"superpose/internal/sim"
	"superpose/internal/stats"
)

const hostSrc = `
INPUT(a)
INPUT(b)
INPUT(c)
OUTPUT(z)
f0 = DFF(d0)
f1 = DFF(d1)
g1 = AND(a, b)
g2 = AND(g1, c)
g3 = AND(g2, f0)
g4 = OR(a, f1)
d0 = XOR(g4, g3)
d1 = NAND(g4, b)
z = OR(g3, d1)
`

func parseHost(t testing.TB) *netlist.Netlist {
	t.Helper()
	n, err := bench.Parse(strings.NewReader(hostSrc), "host")
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func basicSpec() Spec {
	return Spec{
		Name:            "t1",
		TriggerNets:     []string{"g2", "g3"},
		TriggerPolarity: []bool{true, true},
		VictimNet:       "d1",
		TreeArity:       2,
	}
}

func TestInsertPreservesHostIDs(t *testing.T) {
	host := parseHost(t)
	inst, err := Insert(host, basicSpec())
	if err != nil {
		t.Fatal(err)
	}
	for id := 0; id < host.NumGates(); id++ {
		name := host.NameOf(id)
		iid, ok := inst.Infected.GateID(name)
		if !ok || iid != id {
			t.Fatalf("host gate %q: ID %d became %d", name, id, iid)
		}
		if inst.Infected.Gates[id].Type != host.Gates[id].Type {
			t.Fatalf("host gate %q changed type", name)
		}
	}
	if inst.Infected.NumGates() <= host.NumGates() {
		t.Fatal("no Trojan gates added")
	}
}

func TestInsertGroundTruth(t *testing.T) {
	host := parseHost(t)
	inst, err := Insert(host, basicSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Every trojan gate is flagged; no host gate is.
	for _, id := range inst.TrojanGates {
		if !inst.IsTrojanGate(id) {
			t.Errorf("gate %d not flagged", id)
		}
		if id < host.NumGates() {
			t.Errorf("host gate %d listed as Trojan", id)
		}
	}
	for id := 0; id < host.NumGates(); id++ {
		if inst.IsTrojanGate(id) {
			t.Errorf("host gate %d flagged as Trojan", id)
		}
	}
	if !inst.IsTrojanGate(inst.TriggerOut) || !inst.IsTrojanGate(inst.PayloadOut) {
		t.Error("trigger/payload must be Trojan gates")
	}
	// 2 taps, arity 2 -> one AND + one payload XOR = 2 gates.
	if len(inst.TrojanGates) != 2 {
		t.Errorf("TrojanGates = %d, want 2", len(inst.TrojanGates))
	}
	if got := inst.CountTrojanToggles([]int{0, inst.PayloadOut, inst.TriggerOut}); got != 2 {
		t.Errorf("CountTrojanToggles = %d, want 2", got)
	}
}

func TestPayloadSplice(t *testing.T) {
	host := parseHost(t)
	inst, err := Insert(host, basicSpec())
	if err != nil {
		t.Fatal(err)
	}
	inf := inst.Infected
	d1, _ := inf.GateID("d1")
	// Former readers of d1 (f1's D pin and z) must now read the payload.
	f1, _ := inf.GateID("f1")
	if inf.Gates[f1].Fanin[0] != inst.PayloadOut {
		t.Error("f1 must read the payload")
	}
	z, _ := inf.GateID("z")
	found := false
	for _, f := range inf.Gates[z].Fanin {
		if f == inst.PayloadOut {
			found = true
		}
		if f == d1 {
			t.Error("z still reads the bare victim")
		}
	}
	if !found {
		t.Error("z must read the payload")
	}
	// The payload itself reads the victim.
	if inf.Gates[inst.PayloadOut].Fanin[0] != d1 {
		t.Error("payload must read the victim")
	}
}

// TestDormantTrojanIsFunctionallyInvisible is the defining property of the
// threat model: with the trigger off, infected and host circuits compute
// identical functions.
func TestDormantTrojanIsFunctionallyInvisible(t *testing.T) {
	host := parseHost(t)
	inst, err := Insert(host, basicSpec())
	if err != nil {
		t.Fatal(err)
	}
	hostSim := sim.New(host)
	infSim := sim.New(inst.Infected)
	hsrc := hostSim.SourceWords()
	isrc := infSim.SourceWords()

	// Drive identical random values (host IDs == infected IDs for sources).
	seed := uint64(12345)
	for _, id := range append(append([]int{}, host.PIs...), host.FFs...) {
		seed = seed*6364136223846793005 + 1442695040888963407
		hsrc[id] = logic.Word(seed)
		isrc[id] = logic.Word(seed)
	}
	hv := hostSim.Run(hsrc)
	iv := infSim.Run(isrc)

	trig := iv[inst.TriggerOut]
	for _, po := range host.POs {
		// Lanes with the trigger off must match exactly.
		if (hv[po]^iv[po])&^trig != 0 {
			t.Errorf("PO %s differs while trigger is off", host.NameOf(po))
		}
	}
	// And with the trigger on, the payload corrupts the victim: the
	// infected victim-reader value is the XOR of victim and trigger.
	d1, _ := host.GateID("d1")
	if got, want := iv[inst.PayloadOut], iv[d1]^trig; got != want {
		t.Error("payload must XOR the victim with the trigger")
	}
}

func TestTriggerActive(t *testing.T) {
	host := parseHost(t)
	inst, err := Insert(host, basicSpec())
	if err != nil {
		t.Fatal(err)
	}
	s := sim.New(inst.Infected)
	src := s.SourceWords()
	// g2 = AND(a,b,c...) actually g2=AND(g1,c), g1=AND(a,b); g3=AND(g2,f0).
	// Set a=b=c=1, f0=1 -> g2=1, g3=1 -> trigger on (lane 0).
	for _, name := range []string{"a", "b", "c", "f0"} {
		id, _ := inst.Infected.GateID(name)
		src[id] = 1
	}
	vals := s.Run(src)
	if !inst.TriggerActive(vals, 0) {
		t.Error("trigger must fire with all taps at rare value")
	}
	// Clear one tap condition.
	cID, _ := inst.Infected.GateID("c")
	src[cID] = 0
	vals = s.Run(src)
	if inst.TriggerActive(vals, 0) {
		t.Error("trigger must not fire with a tap off")
	}
}

func TestSpecValidate(t *testing.T) {
	good := basicSpec()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{Name: "e1", VictimNet: "x"}, // no taps
		{Name: "e2", TriggerNets: []string{"a"}, TriggerPolarity: []bool{true, false}, VictimNet: "x"},        // shape
		{Name: "e3", TriggerNets: []string{"a"}, TriggerPolarity: []bool{true}},                               // no victim
		{Name: "e4", TriggerNets: []string{"a"}, TriggerPolarity: []bool{true}, VictimNet: "x", TreeArity: 1}, // arity
		{Name: "e5", TriggerNets: []string{"x"}, TriggerPolarity: []bool{true}, VictimNet: "x"},               // loop
	}
	for _, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("spec %s must fail validation", s.Name)
		}
	}
}

func TestInsertErrors(t *testing.T) {
	host := parseHost(t)
	s := basicSpec()
	s.TriggerNets = []string{"ghost", "g3"}
	if _, err := Insert(host, s); err == nil {
		t.Error("unknown trigger net must error")
	}
	s = basicSpec()
	s.VictimNet = "ghost"
	if _, err := Insert(host, s); err == nil {
		t.Error("unknown victim net must error")
	}
}

func TestNegativePolarityAndWideTree(t *testing.T) {
	host := parseHost(t)
	s := Spec{
		Name:            "wide",
		TriggerNets:     []string{"g1", "g2", "g3", "g4", "d0"},
		TriggerPolarity: []bool{true, false, true, false, true},
		VictimNet:       "z",
		TreeArity:       4,
	}
	inst, err := Insert(host, s)
	if err != nil {
		t.Fatal(err)
	}
	// 2 inverters + first level AND(4) with one passthrough + final AND(2)
	// + payload XOR = 5 gates.
	if len(inst.TrojanGates) != 5 {
		t.Errorf("TrojanGates = %d, want 5", len(inst.TrojanGates))
	}
	// Check the trigger computes AND of conditioned taps on exhaustive sim.
	inf := inst.Infected
	s2 := sim.New(inf)
	src := s2.SourceWords()
	// Random lanes on all sources.
	seed := uint64(7)
	for _, id := range append(append([]int{}, inf.PIs...), inf.FFs...) {
		seed = seed*2862933555777941757 + 3037000493
		src[id] = logic.Word(seed)
	}
	vals := s2.Run(src)
	ids := make([]int, len(s.TriggerNets))
	for i, name := range s.TriggerNets {
		ids[i], _ = inf.GateID(name)
	}
	want := logic.AllOne
	for i, id := range ids {
		v := vals[id]
		if !s.TriggerPolarity[i] {
			v = ^v
		}
		want &= v
	}
	if vals[inst.TriggerOut] != want {
		t.Error("trigger tree does not compute the AND of conditioned taps")
	}
}

func TestSinglePositiveTapGetsBuffer(t *testing.T) {
	host := parseHost(t)
	s := Spec{
		Name:            "single",
		TriggerNets:     []string{"g3"},
		TriggerPolarity: []bool{true},
		VictimNet:       "d0",
	}
	inst, err := Insert(host, s)
	if err != nil {
		t.Fatal(err)
	}
	if !inst.IsTrojanGate(inst.TriggerOut) {
		t.Error("single-tap trigger must be a Trojan-owned gate")
	}
	if inst.Infected.Gates[inst.TriggerOut].Type != netlist.Buf {
		t.Errorf("trigger type = %v, want BUF", inst.Infected.Gates[inst.TriggerOut].Type)
	}
}

func TestFindRareNets(t *testing.T) {
	host := parseHost(t)
	rare := FindRareNets(host, 64*64, 5, 0.5)
	if len(rare) == 0 {
		t.Fatal("no rare nets found")
	}
	// Sorted rarest-first.
	for i := 1; i < len(rare); i++ {
		if rare[i].Rareness < rare[i-1].Rareness {
			t.Fatal("rare nets not sorted")
		}
	}
	// g3 = AND(AND(AND(a,b),c),f0): p(1) = 1/16, should be among the rarest.
	g3, _ := host.GateID("g3")
	foundG3 := false
	for _, r := range rare[:3] {
		if r.ID == g3 {
			foundG3 = true
			if !r.RareValue {
				t.Error("g3's rare value must be 1")
			}
			if r.Rareness > 0.1 {
				t.Errorf("g3 rareness = %v", r.Rareness)
			}
		}
	}
	if !foundG3 {
		t.Error("g3 must rank among the rarest nets")
	}
	// No PIs in the list.
	for _, r := range rare {
		if host.Gates[r.ID].Type == netlist.Input {
			t.Error("PIs must not be trigger candidates")
		}
	}
	// Threshold respected.
	narrow := FindRareNets(host, 64*64, 5, 0.1)
	for _, r := range narrow {
		if r.Rareness > 0.1 {
			t.Errorf("net %s rareness %v exceeds threshold", r.Name, r.Rareness)
		}
	}
}

func TestBuildSpec(t *testing.T) {
	host := parseHost(t)
	rare := FindRareNets(host, 64*64, 5, 0.5)
	s, err := BuildSpec("auto", rare, 2, "d1")
	if err != nil {
		t.Fatal(err)
	}
	if len(s.TriggerNets) != 2 {
		t.Fatalf("taps = %v", s.TriggerNets)
	}
	for _, tap := range s.TriggerNets {
		if tap == "d1" {
			t.Error("victim must not be a tap")
		}
	}
	if _, err := Insert(host, s); err != nil {
		t.Fatal(err)
	}
	// Too many taps requested.
	if _, err := BuildSpec("big", rare[:1], 5, "d1"); err == nil {
		t.Error("expected error when not enough rare nets")
	}
}

func TestTapAncestors(t *testing.T) {
	host := parseHost(t)
	anc, err := TapAncestors(host, []string{"g3"})
	if err != nil {
		t.Fatal(err)
	}
	// g3 = AND(g2, f0); g2 = AND(g1, c); g1 = AND(a, b).
	for _, name := range []string{"g3", "g2", "g1", "a", "b", "c", "f0"} {
		id, _ := host.GateID(name)
		if !anc[id] {
			t.Errorf("%s must be a tap ancestor", name)
		}
	}
	// Traversal stops at the flip-flop: d0 feeds f0 sequentially only.
	for _, name := range []string{"d0", "d1", "g4", "z"} {
		id, _ := host.GateID(name)
		if anc[id] {
			t.Errorf("%s must not be a combinational tap ancestor", name)
		}
	}
	if _, err := TapAncestors(host, []string{"ghost"}); err == nil {
		t.Error("unknown tap must error")
	}
}

func TestInsertDetectsPayloadCycle(t *testing.T) {
	// Victim upstream of a tap: payload loops back into the trigger and
	// the infected netlist must be rejected at build time.
	host := parseHost(t)
	s := Spec{
		Name:            "loop",
		TriggerNets:     []string{"g3"},
		TriggerPolarity: []bool{true},
		VictimNet:       "g1", // g1 feeds g2 feeds g3: cycle through payload
	}
	if _, err := Insert(host, s); err == nil {
		t.Fatal("expected combinational-cycle error")
	}
}

func TestMultiPayload(t *testing.T) {
	host := parseHost(t)
	s := Spec{
		Name:            "multi",
		TriggerNets:     []string{"g2", "g3"},
		TriggerPolarity: []bool{true, true},
		VictimNet:       "d1",
		ExtraVictims:    []string{"z"},
		TreeArity:       2,
	}
	inst, err := Insert(host, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.PayloadOuts) != 2 {
		t.Fatalf("PayloadOuts = %d, want 2", len(inst.PayloadOuts))
	}
	if inst.PayloadOuts[0] != inst.PayloadOut {
		t.Error("primary payload must head the list")
	}
	// Both payloads are trojan gates reading their own victims.
	inf := inst.Infected
	d1, _ := inf.GateID("d1")
	z, _ := inf.GateID("z")
	if inf.Gates[inst.PayloadOuts[0]].Fanin[0] != d1 {
		t.Error("payload 0 must read d1")
	}
	if inf.Gates[inst.PayloadOuts[1]].Fanin[0] != z {
		t.Error("payload 1 must read z")
	}
	// 1 AND + 2 payloads.
	if len(inst.TrojanGates) != 3 {
		t.Errorf("TrojanGates = %d, want 3", len(inst.TrojanGates))
	}
	// Dormant invisibility still holds: z's reader set... z is a PO; the
	// PO marking must have survived on the original net.
	if !inf.IsPO(z) {
		t.Error("PO marking lost")
	}
}

func TestMultiPayloadValidation(t *testing.T) {
	s := Spec{
		Name:            "dup",
		TriggerNets:     []string{"a"},
		TriggerPolarity: []bool{true},
		VictimNet:       "x",
		ExtraVictims:    []string{"x"},
	}
	if err := s.Validate(); err == nil {
		t.Error("duplicate victims must fail validation")
	}
	s.ExtraVictims = []string{""}
	if err := s.Validate(); err == nil {
		t.Error("empty extra victim must fail validation")
	}
	s.ExtraVictims = []string{"a"}
	if err := s.Validate(); err == nil {
		t.Error("tap as extra victim must fail validation")
	}
}

func TestActivationProbability(t *testing.T) {
	host := parseHost(t)
	inst, err := Insert(host, basicSpec())
	if err != nil {
		t.Fatal(err)
	}
	// Trigger = AND(g2, g3) = AND over {a,b,c,f0} conjunctions: g3 alone
	// implies g2, so p(trigger) = p(g3) = 1/16.
	p := inst.ActivationProbability(64*256, 5)
	if p < 0.045 || p > 0.08 {
		t.Errorf("activation probability = %v, want ~1/16", p)
	}
	// Deterministic per seed.
	if p != inst.ActivationProbability(64*256, 5) {
		t.Error("same seed must reproduce the estimate")
	}
}

// TestDormantTrojanInvisibleOverManyCycles extends the single-evaluation
// invisibility check to mission-mode operation: 64 random input sequences
// run for many cycles, and every cycle where the trigger stayed off must
// produce identical primary outputs.
func TestDormantTrojanInvisibleOverManyCycles(t *testing.T) {
	host := parseHost(t)
	inst, err := Insert(host, basicSpec())
	if err != nil {
		t.Fatal(err)
	}
	good := sim.NewSeq(host)
	bad := sim.NewSeq(inst.Infected)
	seed := uint64(7)
	next := func() logic.Word {
		seed = seed*6364136223846793005 + 1442695040888963407
		return logic.Word(seed)
	}
	for cycle := 0; cycle < 200; cycle++ {
		pi := []logic.Word{next(), next(), next()}
		og := good.Clock(pi)
		ob := bad.Clock(pi)
		trig := bad.Value(inst.TriggerOut)
		for i := range og {
			if (og[i]^ob[i])&^trig != 0 {
				t.Fatalf("cycle %d: outputs differ on a trigger-off lane", cycle)
			}
		}
		// Once state diverges via a fired payload, later cycles may differ
		// even with the trigger off; stop at the first firing.
		if trig != 0 {
			return
		}
	}
}

func sequentialSpec(depth int) Spec {
	s := basicSpec()
	s.Name = "seq"
	s.SequentialDepth = depth
	return s
}

func TestSequentialTrojanStructure(t *testing.T) {
	host := parseHost(t)
	inst, err := Insert(host, sequentialSpec(3))
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.CounterFFs) != 3 {
		t.Fatalf("counter cells = %d, want 3", len(inst.CounterFFs))
	}
	inf := inst.Infected
	for _, c := range inst.CounterFFs {
		if !inf.IsNoScan(c) {
			t.Errorf("counter cell %s must be NoScan", inf.NameOf(c))
		}
		if !inst.IsTrojanGate(c) {
			t.Errorf("counter cell %s must be a Trojan gate", inf.NameOf(c))
		}
	}
	// The scan view must exclude the hidden cells.
	if got, want := len(inf.ScanFFs()), len(host.FFs); got != want {
		t.Errorf("scannable cells = %d, want %d", got, want)
	}
	if inst.TriggerOut == inst.EventOut {
		t.Error("sequential trigger must differ from the event detector")
	}
}

func TestSequentialTrojanCountsToTerminal(t *testing.T) {
	// Mission mode: hold the rare event active; the payload must fire
	// exactly when the counter reaches terminal count (2^k - 1 more
	// cycles after the state first shows all-ones... precisely: trigger
	// = AND(counter bits) becomes 1 when the counter value is 2^k-1).
	host := parseHost(t)
	const depth = 3
	inst, err := Insert(host, sequentialSpec(depth))
	if err != nil {
		t.Fatal(err)
	}
	s := sim.NewSeq(inst.Infected)
	// Drive a=b=c=1, f0 state=1 so g2=g3=1 -> event on, every cycle.
	ids := map[string]int{}
	for _, name := range []string{"a", "b", "c"} {
		ids[name], _ = inst.Infected.GateID(name)
	}
	f0, _ := inst.Infected.GateID("f0")
	s.LoadState(f0, logic.AllOne)
	pi := make([]logic.Word, len(inst.Infected.PIs))
	for i := range pi {
		pi[i] = logic.AllOne
	}
	firedAt := -1
	for cycle := 1; cycle <= 20; cycle++ {
		// Keep f0 pinned (its D would otherwise change it).
		s.LoadState(f0, logic.AllOne)
		s.Clock(pi)
		if s.Value(inst.TriggerOut)&1 != 0 && firedAt < 0 {
			firedAt = cycle
		}
	}
	// Counter starts at 0 and increments every cycle; all-ones (7) is
	// reached at the start of cycle 8's evaluation.
	if firedAt != 8 {
		t.Errorf("trigger fired at cycle %d, want 8", firedAt)
	}
}

func TestSequentialTrojanFrozenDuringTest(t *testing.T) {
	// Test mode: no capture pulses reach the hidden counter, so the full
	// trigger can never complete during the certification campaign — but
	// the event detector and counter-increment logic still switch.
	host := parseHost(t)
	inst, err := Insert(host, sequentialSpec(2))
	if err != nil {
		t.Fatal(err)
	}
	ch := scan.Configure(inst.Infected, 1)
	e := scan.NewEngine(ch)
	rng := stats.NewRNG(3)
	trojanToggles := 0
	for trial := 0; trial < 50; trial++ {
		p := ch.RandomPattern(rng)
		e.Launch([]*scan.Pattern{p}, scan.LOS)
		for _, id := range e.Toggles(0) {
			if inst.IsTrojanGate(id) {
				trojanToggles++
			}
			if id == inst.TriggerOut {
				t.Fatal("full trigger must never fire with a frozen counter")
			}
			for _, c := range inst.CounterFFs {
				if id == c {
					t.Fatal("hidden counter cell toggled during launch")
				}
			}
		}
	}
	if trojanToggles == 0 {
		t.Error("the sequential Trojan's combinational stage never switched: no power signature")
	}
}
