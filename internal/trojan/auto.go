package trojan

import (
	"fmt"

	"superpose/internal/netlist"
)

// AutoInsert infects a user netlist with a synthetic Trojan placed by
// rare-net analysis: the taps rarest nets become the trigger, and the
// rarest net that is not an ancestor of any tap becomes the payload
// victim (keeping the infected circuit acyclic). The placement is
// deterministic for a given host. This is the shared materialization
// path of the trojanscan CLI's -bench -infect mode and the certification
// service's inline-bench jobs.
func AutoInsert(host *netlist.Netlist, taps int) (*Instance, error) {
	if taps <= 0 {
		return nil, fmt.Errorf("trojan: auto-insert needs at least 1 trigger tap, got %d", taps)
	}
	rare := FindRareNets(host, 64*64, 99, 0.3)
	if len(rare) <= taps {
		return nil, fmt.Errorf("trojan: only %d rare nets available for %d taps", len(rare), taps)
	}
	var tapNames []string
	for _, r := range rare[:taps] {
		tapNames = append(tapNames, r.Name)
	}
	anc, err := TapAncestors(host, tapNames)
	if err != nil {
		return nil, err
	}
	victim := ""
	for i := len(rare) - 1; i >= 0; i-- {
		if !anc[rare[i].ID] {
			victim = rare[i].Name
			break
		}
	}
	if victim == "" {
		return nil, fmt.Errorf("trojan: no cycle-free payload victim found")
	}
	spec, err := BuildSpec("user", rare, taps, victim)
	if err != nil {
		return nil, err
	}
	return Insert(host, spec)
}
