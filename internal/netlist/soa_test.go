package netlist

import (
	"testing"
)

// buildSoATestNetlist returns a small multi-level circuit with a mix of
// sources (PIs and a DFF), n-ary gates and a DFF D-pin reader, covering
// every structural case the SoA compile distinguishes.
func buildSoATestNetlist(t *testing.T) *Netlist {
	t.Helper()
	b := NewBuilder("soa")
	for _, in := range []string{"a", "b", "c"} {
		if _, err := b.AddInput(in); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := b.AddDFF("q", "g2"); err != nil {
		t.Fatal(err)
	}
	mustGate := func(name string, typ GateType, fanin ...string) {
		t.Helper()
		if _, err := b.AddGate(name, typ, fanin...); err != nil {
			t.Fatal(err)
		}
	}
	mustGate("g1", And, "a", "b")
	mustGate("g2", Or, "g1", "c")
	mustGate("g3", Xor, "g2", "q")
	mustGate("g4", Nand, "g1", "g2", "g3")
	b.MarkOutput("g4")
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// TestSoAInvariants checks the structural contract of the compile: the
// compact numbering is a permutation with sources first, the
// combinational range is the netlist's levelized topological order, the
// fanin CSR preserves original fanin order, and the fanout CSR holds
// exactly the combinational (non-source) readers.
func TestSoAInvariants(t *testing.T) {
	n := buildSoATestNetlist(t)
	s := n.SoA()

	if s.NumGates != n.NumGates() {
		t.Fatalf("NumGates = %d, want %d", s.NumGates, n.NumGates())
	}

	// Orig/Compact are inverse permutations.
	if len(s.Orig) != s.NumGates || len(s.Compact) != s.NumGates {
		t.Fatalf("permutation arrays sized %d/%d, want %d", len(s.Orig), len(s.Compact), s.NumGates)
	}
	for c, id := range s.Orig {
		if s.Compact[id] != int32(c) {
			t.Errorf("Compact[Orig[%d]] = %d, want %d", c, s.Compact[id], c)
		}
	}

	// Sources occupy [0, NumSources) in ascending original-ID order.
	for c := 0; c < s.NumGates; c++ {
		isSrc := s.Typ[c].IsSource()
		if isSrc != (c < s.NumSources) {
			t.Errorf("compact %d: IsSource=%v but NumSources=%d", c, isSrc, s.NumSources)
		}
		if c > 0 && c < s.NumSources && s.Orig[c] <= s.Orig[c-1] {
			t.Errorf("source order not ascending at compact %d", c)
		}
	}

	// The combinational range is exactly TopoOrder, element for element.
	topo := n.TopoOrder()
	if got := s.NumGates - s.NumSources; got != len(topo) {
		t.Fatalf("combinational range %d, want %d", got, len(topo))
	}
	for i, id := range topo {
		if s.Orig[s.NumSources+i] != int32(id) {
			t.Errorf("combinational slot %d holds orig %d, want %d", i, s.Orig[s.NumSources+i], id)
		}
	}

	// Levels match the netlist and are nondecreasing over the
	// combinational range (the levelization the fault propagator's
	// bucket drain relies on).
	for c := 0; c < s.NumGates; c++ {
		if int(s.Level[c]) != n.Level(int(s.Orig[c])) {
			t.Errorf("compact %d: level %d, want %d", c, s.Level[c], n.Level(int(s.Orig[c])))
		}
	}
	for c := s.NumSources + 1; c < s.NumGates; c++ {
		if s.Level[c] < s.Level[c-1] {
			t.Errorf("level regression at compact %d: %d < %d", c, s.Level[c], s.Level[c-1])
		}
	}

	// Fanin CSR: sources empty, gates carry their original fanin order.
	for c := 0; c < s.NumGates; c++ {
		fanin := s.FaninOf(int32(c))
		if c < s.NumSources {
			if len(fanin) != 0 {
				t.Errorf("source compact %d has %d fanins", c, len(fanin))
			}
			continue
		}
		orig := n.Gates[s.Orig[c]].Fanin
		if len(fanin) != len(orig) {
			t.Fatalf("compact %d: %d fanins, want %d", c, len(fanin), len(orig))
		}
		for i, f := range fanin {
			if s.Orig[f] != int32(orig[i]) {
				t.Errorf("compact %d fanin %d: orig %d, want %d (order must be preserved)",
					c, i, s.Orig[f], orig[i])
			}
		}
	}

	// Fanout CSR: exactly the non-source readers, each strictly higher
	// level than the driver.
	for c := 0; c < s.NumGates; c++ {
		want := map[int32]bool{}
		for _, r := range n.Fanouts(int(s.Orig[c])) {
			if !n.Gates[r].Type.IsSource() {
				want[s.Compact[r]] = true
			}
		}
		got := s.FanoutOf(int32(c))
		if len(got) != len(want) {
			t.Errorf("compact %d: %d fanouts, want %d", c, len(got), len(want))
		}
		for _, f := range got {
			if !want[f] {
				t.Errorf("compact %d: unexpected fanout %d", c, f)
			}
			if s.Level[f] <= s.Level[c] && c >= s.NumSources {
				t.Errorf("fanout %d of %d not at strictly higher level", f, c)
			}
		}
	}
}

// TestSoACached checks the compile is built once and shared.
func TestSoACached(t *testing.T) {
	n := buildSoATestNetlist(t)
	if n.SoA() != n.SoA() {
		t.Fatal("SoA() not cached")
	}
}
