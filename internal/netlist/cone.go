package netlist

import "sort"

// ConeWalker computes forward logic cones: the set of combinational gates
// whose value can depend on a given set of nets. Propagation stops at
// flip-flop D pins — the sequential boundary — which is what keeps
// single-bit cones shallow in a full-scan design: a flipped scan cell or
// primary input reaches only the combinational logic between its output
// and the next rank of flip-flops.
//
// The walker owns reusable scratch (epoch-stamped marks and the cone
// list), so repeated walks over the same netlist allocate nothing once
// the buffers have grown to their working size. It is not safe for
// concurrent use; create one per goroutine.
type ConeWalker struct {
	n     *Netlist
	mark  []uint32
	epoch uint32
	cone  coneList
}

// coneList sorts the collected cone by (logic level, gate ID): a valid
// evaluation order for incremental re-simulation, deterministic across
// walks.
type coneList struct {
	ids   []int
	level []int
}

func (c coneList) Len() int      { return len(c.ids) }
func (c coneList) Swap(i, j int) { c.ids[i], c.ids[j] = c.ids[j], c.ids[i] }
func (c coneList) Less(i, j int) bool {
	li, lj := c.level[c.ids[i]], c.level[c.ids[j]]
	if li != lj {
		return li < lj
	}
	return c.ids[i] < c.ids[j]
}

// NewConeWalker returns a walker over n. The netlist must be frozen.
func NewConeWalker(n *Netlist) *ConeWalker {
	return &ConeWalker{n: n, mark: make([]uint32, n.NumGates())}
}

// AcquireConeWalker returns a walker over n from the netlist's pool,
// creating one when the pool is empty. Walkers hold O(gates) mark
// scratch, so construction-time consumers (Sweeper plan building) should
// acquire/release instead of allocating their own.
func (n *Netlist) AcquireConeWalker() *ConeWalker {
	if w, ok := n.walkerPool.Get().(*ConeWalker); ok {
		return w
	}
	return NewConeWalker(n)
}

// Release returns the walker to its netlist's pool. The caller must not
// use the walker (or slices returned by Walk) afterwards.
func (w *ConeWalker) Release() {
	w.n.walkerPool.Put(w)
}

// Walk returns the combinational gates reachable from the root nets,
// sorted by (logic level, ID) — a valid topological evaluation order.
// Roots themselves are marked as reached (see Reached) but only
// combinational gates appear in the result; flip-flops terminate the
// walk at their D pins. The returned slice is owned by the walker and
// valid until the next Walk.
func (w *ConeWalker) Walk(roots []int) []int {
	w.epoch++
	if w.epoch == 0 { // uint32 wrap: invalidate all stale marks
		for i := range w.mark {
			w.mark[i] = 0
		}
		w.epoch = 1
	}
	w.cone.ids = w.cone.ids[:0]
	w.cone.level = w.n.level
	for _, r := range roots {
		if w.mark[r] == w.epoch {
			continue
		}
		w.mark[r] = w.epoch
		for _, fo := range w.n.Fanouts(r) {
			w.visit(fo)
		}
	}
	// The cone list doubles as the BFS queue.
	for i := 0; i < len(w.cone.ids); i++ {
		for _, fo := range w.n.Fanouts(w.cone.ids[i]) {
			w.visit(fo)
		}
	}
	sort.Sort(w.cone)
	return w.cone.ids
}

func (w *ConeWalker) visit(id int) {
	if w.mark[id] == w.epoch || w.n.Gates[id].Type.IsSource() {
		return
	}
	w.mark[id] = w.epoch
	w.cone.ids = append(w.cone.ids, id)
}

// Reached reports whether net id was a root of, or inside, the most
// recent Walk's cone. Callers use it to find the flip-flops whose D pins
// a cone touches (the capture set of a Launch-on-Capture sweep).
func (w *ConeWalker) Reached(id int) bool {
	return w.mark[id] == w.epoch
}
