package netlist

import (
	"strings"
	"testing"
)

// buildSmall constructs the small reference circuit used across the tests:
//
//	INPUT(a) INPUT(b)
//	ff = DFF(d)
//	n1 = NAND(a, b)
//	n2 = NOT(ff)
//	d  = AND(n1, n2)
//	OUTPUT(d)
func buildSmall(t *testing.T) *Netlist {
	t.Helper()
	b := NewBuilder("small")
	mustAdd := func(_ int, err error) {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(b.AddInput("a"))
	mustAdd(b.AddInput("b"))
	mustAdd(b.AddDFF("ff", "d")) // forward reference to d
	mustAdd(b.AddGate("n1", Nand, "a", "b"))
	mustAdd(b.AddGate("n2", Not, "ff"))
	mustAdd(b.AddGate("d", And, "n1", "n2"))
	b.MarkOutput("d")
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestBuildSmall(t *testing.T) {
	n := buildSmall(t)
	if got := n.NumGates(); got != 6 {
		t.Errorf("NumGates = %d, want 6", got)
	}
	if got := n.NumCombinational(); got != 3 {
		t.Errorf("NumCombinational = %d, want 3", got)
	}
	if len(n.PIs) != 2 || len(n.FFs) != 1 || len(n.POs) != 1 {
		t.Errorf("PIs/FFs/POs = %d/%d/%d, want 2/1/1", len(n.PIs), len(n.FFs), len(n.POs))
	}
	d, ok := n.GateID("d")
	if !ok {
		t.Fatal("net d missing")
	}
	if !n.IsPO(d) {
		t.Error("d must be a PO")
	}
	a, _ := n.GateID("a")
	if n.IsPO(a) {
		t.Error("a must not be a PO")
	}
	if n.NameOf(d) != "d" {
		t.Errorf("NameOf(d) = %q", n.NameOf(d))
	}
}

func TestTopoOrderRespectsDependencies(t *testing.T) {
	n := buildSmall(t)
	seen := make(map[int]bool)
	for _, id := range n.TopoOrder() {
		for _, f := range n.Gates[id].Fanin {
			if !n.Gates[f].Type.IsSource() && !seen[f] {
				t.Errorf("gate %s evaluated before fanin %s", n.NameOf(id), n.NameOf(f))
			}
		}
		seen[id] = true
	}
	if len(seen) != n.NumCombinational() {
		t.Errorf("topo order covers %d gates, want %d", len(seen), n.NumCombinational())
	}
}

func TestLevels(t *testing.T) {
	n := buildSmall(t)
	id := func(name string) int {
		g, ok := n.GateID(name)
		if !ok {
			t.Fatalf("missing net %s", name)
		}
		return g
	}
	if n.Level(id("a")) != 0 || n.Level(id("ff")) != 0 {
		t.Error("sources must be level 0")
	}
	if n.Level(id("n1")) != 1 || n.Level(id("n2")) != 1 {
		t.Errorf("n1/n2 levels = %d/%d, want 1/1", n.Level(id("n1")), n.Level(id("n2")))
	}
	if n.Level(id("d")) != 2 {
		t.Errorf("d level = %d, want 2", n.Level(id("d")))
	}
	if n.Depth() != 2 {
		t.Errorf("Depth = %d, want 2", n.Depth())
	}
}

func TestFanouts(t *testing.T) {
	n := buildSmall(t)
	a, _ := n.GateID("a")
	n1, _ := n.GateID("n1")
	fo := n.Fanouts(a)
	if len(fo) != 1 || fo[0] != n1 {
		t.Errorf("Fanouts(a) = %v, want [%d]", fo, n1)
	}
	d, _ := n.GateID("d")
	ff, _ := n.GateID("ff")
	foD := n.Fanouts(d)
	if len(foD) != 1 || foD[0] != ff {
		t.Errorf("Fanouts(d) = %v, want DFF reader [%d]", foD, ff)
	}
}

func TestCombinationalCycleDetected(t *testing.T) {
	b := NewBuilder("cyc")
	if _, err := b.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("x", And, "a", "y"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("y", Or, "x", "a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("expected cycle error")
	} else if !strings.Contains(err.Error(), "cycle") {
		t.Fatalf("error = %v, want cycle mention", err)
	}
}

func TestDFFBreaksCycle(t *testing.T) {
	// Feedback through a flip-flop is sequential, not a combinational cycle.
	b := NewBuilder("seq")
	if _, err := b.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddDFF("q", "d"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("d", Xor, "a", "q"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err != nil {
		t.Fatalf("sequential feedback must build: %v", err)
	}
}

func TestUndefinedNetRejected(t *testing.T) {
	b := NewBuilder("undef")
	if _, err := b.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("x", And, "a", "ghost"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("expected undefined-net error")
	}
}

func TestDoubleDefinitionRejected(t *testing.T) {
	b := NewBuilder("dup")
	if _, err := b.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddInput("a"); err == nil {
		t.Fatal("expected duplicate-definition error")
	}
}

func TestUnknownOutputRejected(t *testing.T) {
	b := NewBuilder("badout")
	if _, err := b.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	b.MarkOutput("nope")
	if _, err := b.Build(); err == nil {
		t.Fatal("expected unknown-output error")
	}
}

func TestFaninArityChecks(t *testing.T) {
	b := NewBuilder("arity")
	if _, err := b.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("x", And, "a"); err != nil {
		t.Fatal(err) // arity is checked at Build/Freeze, not declaration
	}
	if _, err := b.Build(); err == nil {
		t.Fatal("expected arity error for 1-input AND")
	}

	b2 := NewBuilder("arity2")
	if _, err := b2.AddInput("a"); err != nil {
		t.Fatal(err)
	}
	if _, err := b2.AddInput("b"); err != nil {
		t.Fatal(err)
	}
	if _, err := b2.AddGate("x", Not, "a", "b"); err != nil {
		t.Fatal(err)
	}
	if _, err := b2.Build(); err == nil {
		t.Fatal("expected arity error for 2-input NOT")
	}
}

func TestSourceViaAddGateRejected(t *testing.T) {
	b := NewBuilder("src")
	if _, err := b.AddGate("x", Input); err == nil {
		t.Fatal("AddGate must reject source types")
	}
	if _, err := b.AddGate("y", DFF, "x"); err == nil {
		t.Fatal("AddGate must reject DFF")
	}
}

func TestParseGateType(t *testing.T) {
	for typ := GateType(0); typ < numGateTypes; typ++ {
		got, ok := ParseGateType(typ.String())
		if !ok || got != typ {
			t.Errorf("ParseGateType(%q) = %v,%v", typ.String(), got, ok)
		}
	}
	if _, ok := ParseGateType("FROB"); ok {
		t.Error("ParseGateType must reject unknown names")
	}
	if s := GateType(200).String(); !strings.Contains(s, "200") {
		t.Errorf("unknown type String = %q", s)
	}
}

func TestCloneAndRewire(t *testing.T) {
	n := buildSmall(t)
	b := Clone(n)

	// Splice an XOR between d and its readers (the DFF), Trojan-payload style.
	if _, err := b.AddInput("trig"); err != nil {
		t.Fatal(err)
	}
	if _, err := b.AddGate("d_troj", Xor, "d", "trig"); err != nil {
		t.Fatal(err)
	}
	if err := b.RewireReaders("d", "d_troj", "d_troj"); err != nil {
		t.Fatal(err)
	}
	m, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}

	// The DFF must now read d_troj; the XOR must still read d.
	ff, _ := m.GateID("ff")
	dt, _ := m.GateID("d_troj")
	d, _ := m.GateID("d")
	if m.Gates[ff].Fanin[0] != dt {
		t.Errorf("DFF reads %s, want d_troj", m.NameOf(m.Gates[ff].Fanin[0]))
	}
	if m.Gates[dt].Fanin[0] != d {
		t.Errorf("payload XOR reads %s, want d", m.NameOf(m.Gates[dt].Fanin[0]))
	}
	// POs preserved on the original net.
	if !m.IsPO(d) {
		t.Error("original PO marking must survive clone+rewire")
	}
	// Original netlist untouched.
	origFF, _ := n.GateID("ff")
	origD, _ := n.GateID("d")
	if n.Gates[origFF].Fanin[0] != origD {
		t.Error("Clone must not mutate the original netlist")
	}
}

func TestRewireErrors(t *testing.T) {
	n := buildSmall(t)
	b := Clone(n)
	if err := b.RewireReaders("ghost", "d"); err == nil {
		t.Error("unknown from-net must error")
	}
	if err := b.RewireReaders("d", "ghost"); err == nil {
		t.Error("unknown to-net must error")
	}
	if err := b.RewireReaders("d", "n1", "ghost"); err == nil {
		t.Error("unknown excluded net must error")
	}
}

func TestFreshName(t *testing.T) {
	n := buildSmall(t)
	b := Clone(n)
	if got := b.FreshName("zz"); got != "zz" {
		t.Errorf("FreshName(zz) = %q", got)
	}
	if got := b.FreshName("d"); got == "d" || b.Has(got) {
		t.Errorf("FreshName(d) = %q must be new", got)
	}
}

func TestDoubleFreezeRejected(t *testing.T) {
	n := buildSmall(t)
	if err := n.Freeze(); err == nil {
		t.Fatal("second Freeze must error")
	}
}

func TestStats(t *testing.T) {
	n := buildSmall(t)
	s := n.ComputeStats()
	if s.Gates != 6 || s.Combinational != 3 || s.PIs != 2 || s.FFs != 1 || s.POs != 1 || s.Depth != 2 {
		t.Errorf("stats = %+v", s)
	}
	if s.ByType[Nand] != 1 || s.ByType[And] != 1 || s.ByType[Not] != 1 {
		t.Errorf("ByType = %v", s.ByType)
	}
	if str := s.String(); !strings.Contains(str, "6 gates") {
		t.Errorf("Stats.String = %q", str)
	}
}

func TestLevelizationProperty(t *testing.T) {
	// Property over the reference circuit: every combinational gate's
	// level strictly exceeds all its fanins' levels.
	n := buildSmall(t)
	for _, id := range n.TopoOrder() {
		for _, f := range n.Gates[id].Fanin {
			if n.Level(id) <= n.Level(f) && !n.Gates[f].Type.IsSource() {
				t.Errorf("level(%s)=%d <= level(%s)=%d",
					n.NameOf(id), n.Level(id), n.NameOf(f), n.Level(f))
			}
		}
	}
}

func TestFanoutsConsistentWithFanins(t *testing.T) {
	// Property: fanout lists are the exact inverse of the fanin relation.
	n := buildSmall(t)
	count := 0
	for id := range n.Gates {
		for _, fo := range n.Fanouts(id) {
			found := false
			for _, f := range n.Gates[fo].Fanin {
				if f == id {
					found = true
				}
			}
			if !found {
				t.Errorf("fanout edge %d->%d has no fanin counterpart", id, fo)
			}
			count++
		}
	}
	want := 0
	for _, g := range n.Gates {
		want += len(g.Fanin)
	}
	if count != want {
		t.Errorf("edge count %d != fanin total %d", count, want)
	}
}
