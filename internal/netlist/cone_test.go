package netlist

import (
	"testing"

	"superpose/internal/stats"
)

// randomConeCircuit builds a small layered circuit with FFs interleaved,
// so cones hit sequential boundaries.
func randomConeCircuit(t *testing.T, seed uint64) *Netlist {
	t.Helper()
	rng := stats.NewRNG(seed)
	b := NewBuilder("cone")
	var nets []string
	for i := 0; i < 3; i++ {
		name := "pi" + string(rune('0'+i))
		if _, err := b.AddInput(name); err != nil {
			t.Fatal(err)
		}
		nets = append(nets, name)
	}
	gate := 0
	newName := func() string {
		gate++
		return "g" + string(rune('a'+gate/26)) + string(rune('a'+gate%26))
	}
	for i := 0; i < 40; i++ {
		a := nets[int(rng.Uint64()%uint64(len(nets)))]
		c := nets[int(rng.Uint64()%uint64(len(nets)))]
		name := newName()
		typ := []GateType{And, Or, Xor, Nand, Nor}[int(rng.Uint64()%5)]
		if _, err := b.AddGate(name, typ, a, c); err != nil {
			t.Fatal(err)
		}
		nets = append(nets, name)
		if rng.Uint64()%5 == 0 {
			ff := "f" + name
			if _, err := b.AddDFF(ff, name); err != nil {
				t.Fatal(err)
			}
			nets = append(nets, ff)
		}
	}
	b.MarkOutput(nets[len(nets)-1])
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return n
}

// reachableRef computes the forward combinational cone by brute-force
// fixpoint over the fanout relation, stopping at sources.
func reachableRef(n *Netlist, roots []int) map[int]bool {
	reached := map[int]bool{}
	var stack []int
	for _, r := range roots {
		stack = append(stack, n.Fanouts(r)...)
	}
	for len(stack) > 0 {
		id := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		if reached[id] || n.Gates[id].Type.IsSource() {
			continue
		}
		reached[id] = true
		stack = append(stack, n.Fanouts(id)...)
	}
	return reached
}

func TestConeWalkerMatchesReachability(t *testing.T) {
	for seed := uint64(0); seed < 6; seed++ {
		n := randomConeCircuit(t, seed)
		w := NewConeWalker(n)
		rng := stats.NewRNG(seed + 100)
		for trial := 0; trial < 10; trial++ {
			var roots []int
			for _, id := range n.FFs {
				if rng.Uint64()%4 == 0 {
					roots = append(roots, id)
				}
			}
			for _, id := range n.PIs {
				if rng.Uint64()%4 == 0 {
					roots = append(roots, id)
				}
			}
			if len(roots) == 0 {
				roots = []int{n.PIs[0]}
			}
			// Duplicate a root: dedup must hold.
			roots = append(roots, roots[0])

			cone := w.Walk(roots)
			want := reachableRef(n, roots)
			if len(cone) != len(want) {
				t.Fatalf("seed %d trial %d: cone size %d, want %d", seed, trial, len(cone), len(want))
			}
			for _, id := range cone {
				if !want[id] {
					t.Fatalf("seed %d: gate %s wrongly in cone", seed, n.NameOf(id))
				}
				if n.Gates[id].Type.IsSource() {
					t.Fatalf("seed %d: source %s in cone", seed, n.NameOf(id))
				}
			}
			// (level, id) evaluation order: every fanin inside the cone
			// must come earlier.
			for i := 1; i < len(cone); i++ {
				a, b := cone[i-1], cone[i]
				if n.Level(a) > n.Level(b) || (n.Level(a) == n.Level(b) && a >= b) {
					t.Fatalf("seed %d: cone not (level, id) sorted at %d", seed, i)
				}
			}
			// Reached covers roots and cone members, and nothing else.
			for _, r := range roots {
				if !w.Reached(r) {
					t.Fatalf("seed %d: root %s not Reached", seed, n.NameOf(r))
				}
			}
			inCone := map[int]bool{}
			for _, id := range cone {
				inCone[id] = true
			}
			isRoot := map[int]bool{}
			for _, r := range roots {
				isRoot[r] = true
			}
			for id := range n.Gates {
				if w.Reached(id) != (inCone[id] || isRoot[id]) {
					t.Fatalf("seed %d: Reached(%s) = %v inconsistent", seed, n.NameOf(id), w.Reached(id))
				}
			}
		}
	}
}

func TestConeWalkerStopsAtFlipFlops(t *testing.T) {
	// pi -> g1 -> ff -> g2: the cone of pi holds g1 only; the cone of ff
	// holds g2 only.
	b := NewBuilder("stop")
	mustAdd := func(_ int, err error) {
		if err != nil {
			t.Fatal(err)
		}
	}
	mustAdd(b.AddInput("pi"))
	mustAdd(b.AddGate("g1", Not, "pi"))
	mustAdd(b.AddDFF("ff", "g1"))
	mustAdd(b.AddGate("g2", Not, "ff"))
	b.MarkOutput("g2")
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	pi, _ := n.GateID("pi")
	ff, _ := n.GateID("ff")
	g1, _ := n.GateID("g1")
	g2, _ := n.GateID("g2")
	w := NewConeWalker(n)
	cone := w.Walk([]int{pi})
	if len(cone) != 1 || cone[0] != g1 {
		t.Errorf("cone(pi) = %v, want [g1]", cone)
	}
	if w.Reached(g2) {
		t.Error("cone of pi crossed the flip-flop boundary")
	}
	cone = w.Walk([]int{ff})
	if len(cone) != 1 || cone[0] != g2 {
		t.Errorf("cone(ff) = %v, want [g2]", cone)
	}
	if w.Reached(g1) {
		t.Error("stale mark survived the epoch bump")
	}
}
