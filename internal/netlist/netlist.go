// Package netlist provides the gate-level netlist database used by every
// stage of the toolchain: parsing, simulation, ATPG, Trojan insertion and
// the superposition analysis itself.
//
// The model is the classic single-output-gate network of the ISCAS
// benchmarks: every gate drives exactly one net, so gates and nets share
// one identifier space. Primary inputs and D flip-flops are source gates
// with no combinational fanin evaluation; in the full-scan methodology the
// flip-flops double as scan cells, making their outputs pseudo-primary
// inputs and their D pins pseudo-primary outputs.
package netlist

import (
	"fmt"
	"sort"
	"sync"
)

// GateType enumerates the cell types of the netlist.
type GateType uint8

// The supported cell types. Input and DFF are value sources for
// combinational evaluation; everything else computes a boolean function of
// its fanins.
const (
	Input GateType = iota
	DFF
	Buf
	Not
	And
	Nand
	Or
	Nor
	Xor
	Xnor
	numGateTypes
)

var gateTypeNames = [...]string{
	Input: "INPUT", DFF: "DFF", Buf: "BUF", Not: "NOT",
	And: "AND", Nand: "NAND", Or: "OR", Nor: "NOR", Xor: "XOR", Xnor: "XNOR",
}

// String returns the .bench-style upper-case name of the gate type.
func (t GateType) String() string {
	if int(t) < len(gateTypeNames) {
		return gateTypeNames[t]
	}
	return fmt.Sprintf("GateType(%d)", uint8(t))
}

// ParseGateType converts a .bench-style type name (case-insensitive callers
// should upper-case first) to a GateType.
func ParseGateType(s string) (GateType, bool) {
	for t, name := range gateTypeNames {
		if name == s {
			return GateType(t), true
		}
	}
	return 0, false
}

// IsSource reports whether the gate type is a value source (no
// combinational evaluation): primary inputs and scan flip-flops.
func (t GateType) IsSource() bool { return t == Input || t == DFF }

// MinFanin returns the minimum legal fanin count for the type.
func (t GateType) MinFanin() int {
	switch t {
	case Input:
		return 0
	case DFF, Buf, Not:
		return 1
	default:
		return 2
	}
}

// MaxFanin returns the maximum legal fanin count (0 = unbounded).
func (t GateType) MaxFanin() int {
	switch t {
	case Input:
		return 0
	case DFF, Buf, Not:
		return 1
	default:
		return 0 // AND/OR/... are n-ary in .bench
	}
}

// Gate is one cell of the netlist. Its output net shares the gate's ID.
type Gate struct {
	Type  GateType
	Fanin []int // driving gate/net IDs; for DFF, Fanin[0] is the D pin
}

// Netlist is an immutable-after-Freeze gate-level circuit.
//
// Construction goes through Builder (or the bench parser); afterwards the
// structure is treated as read-only by the rest of the toolchain, so a
// single Netlist may be shared freely between goroutines.
type Netlist struct {
	Name string

	Gates []Gate   // index = gate/net ID
	Names []string // net names, parallel to Gates

	PIs []int // primary input gate IDs, in declaration order
	POs []int // primary output net IDs, in declaration order
	FFs []int // all flip-flop gate IDs, in declaration order

	// NoScan marks flip-flops excluded from the scan chains (e.g. the
	// hidden state elements of a sequential Trojan). Indexed by gate ID;
	// nil when every flip-flop is scannable.
	NoScan []bool

	byName   map[string]int
	nameOnce sync.Once // guards the lazy byName build (streaming path)
	fanouts  [][]int   // computed by Freeze
	order    []int     // topological order of non-source gates
	level    []int     // logic level per gate (sources are level 0)
	frozen   bool

	// walkerPool recycles ConeWalkers (whose marks are O(gates)) across
	// short-lived consumers like per-die Sweeper construction.
	walkerPool sync.Pool

	// Lazily compiled structure-of-arrays layout (see SoA), shared by
	// every PPSFP engine over this netlist.
	soaOnce sync.Once
	soa     *SoA
}

// NumGates returns the total number of gates (including sources).
func (n *Netlist) NumGates() int { return len(n.Gates) }

// ScanFFs returns the flip-flops available to the scan infrastructure:
// FFs minus the NoScan-marked ones. With no markings it returns FFs
// itself (the common case allocates nothing).
func (n *Netlist) ScanFFs() []int {
	if n.NoScan == nil {
		return n.FFs
	}
	var out []int
	for _, ff := range n.FFs {
		if !n.NoScan[ff] {
			out = append(out, ff)
		}
	}
	return out
}

// IsNoScan reports whether flip-flop id is excluded from scan.
func (n *Netlist) IsNoScan(id int) bool {
	return n.NoScan != nil && id < len(n.NoScan) && n.NoScan[id]
}

// NumCombinational returns the number of combinational (non-source) gates.
func (n *Netlist) NumCombinational() int { return len(n.order) }

// GateID looks up a gate by net name. The name index is built lazily on
// first use: netlists from the streaming ingestion path carry no map, so
// pure build/simulate workloads never pay for a million-entry index.
func (n *Netlist) GateID(name string) (int, bool) {
	n.nameOnce.Do(func() {
		if n.byName != nil {
			return // eager index from the legacy Builder
		}
		m := make(map[string]int, len(n.Names))
		for id, nm := range n.Names {
			m[nm] = id
		}
		n.byName = m
	})
	id, ok := n.byName[name]
	return id, ok
}

// NameOf returns the net name for a gate ID.
func (n *Netlist) NameOf(id int) string { return n.Names[id] }

// Fanouts returns the gate IDs reading net id. The returned slice is owned
// by the netlist and must not be modified.
func (n *Netlist) Fanouts(id int) []int { return n.fanouts[id] }

// TopoOrder returns the combinational gates in topological order. The
// returned slice is owned by the netlist and must not be modified.
func (n *Netlist) TopoOrder() []int { return n.order }

// Level returns the logic level of gate id: 0 for sources, 1 + max fanin
// level otherwise.
func (n *Netlist) Level(id int) int { return n.level[id] }

// Depth returns the maximum logic level of the circuit.
func (n *Netlist) Depth() int {
	d := 0
	for _, l := range n.level {
		if l > d {
			d = l
		}
	}
	return d
}

// IsPO reports whether net id is a primary output.
func (n *Netlist) IsPO(id int) bool {
	for _, po := range n.POs {
		if po == id {
			return true
		}
	}
	return false
}

// Freeze validates the netlist, computes fanouts, levelizes the
// combinational gates and locks the structure. It must be called exactly
// once after construction; Builder.Build does so automatically.
func (n *Netlist) Freeze() error {
	if n.frozen {
		return fmt.Errorf("netlist %q: already frozen", n.Name)
	}
	if err := n.validate(); err != nil {
		return err
	}
	n.computeFanouts()
	if err := n.levelize(); err != nil {
		return err
	}
	n.frozen = true
	return nil
}

func (n *Netlist) validate() error {
	if len(n.Gates) != len(n.Names) {
		return fmt.Errorf("netlist %q: %d gates but %d names", n.Name, len(n.Gates), len(n.Names))
	}
	for id, g := range n.Gates {
		if g.Type >= numGateTypes {
			return fmt.Errorf("netlist %q: gate %s: invalid type %d", n.Name, n.Names[id], g.Type)
		}
		if min := g.Type.MinFanin(); len(g.Fanin) < min {
			return fmt.Errorf("netlist %q: gate %s (%s): %d fanins, need at least %d",
				n.Name, n.Names[id], g.Type, len(g.Fanin), min)
		}
		if max := g.Type.MaxFanin(); max > 0 && len(g.Fanin) > max {
			return fmt.Errorf("netlist %q: gate %s (%s): %d fanins, at most %d allowed",
				n.Name, n.Names[id], g.Type, len(g.Fanin), max)
		}
		for _, f := range g.Fanin {
			if f < 0 || f >= len(n.Gates) {
				return fmt.Errorf("netlist %q: gate %s: fanin %d out of range", n.Name, n.Names[id], f)
			}
		}
	}
	for _, po := range n.POs {
		if po < 0 || po >= len(n.Gates) {
			return fmt.Errorf("netlist %q: primary output %d out of range", n.Name, po)
		}
	}
	return nil
}

func (n *Netlist) computeFanouts() {
	counts := make([]int, len(n.Gates))
	for _, g := range n.Gates {
		for _, f := range g.Fanin {
			counts[f]++
		}
	}
	// One backing array for all fanout lists keeps them cache-friendly.
	flat := make([]int, sum(counts))
	n.fanouts = make([][]int, len(n.Gates))
	pos := 0
	for id, c := range counts {
		n.fanouts[id] = flat[pos : pos : pos+c]
		pos += c
	}
	for id, g := range n.Gates {
		for _, f := range g.Fanin {
			n.fanouts[f] = append(n.fanouts[f], id)
		}
	}
}

func sum(xs []int) int {
	s := 0
	for _, x := range xs {
		s += x
	}
	return s
}

// levelize computes a topological order of the combinational gates with
// Kahn's algorithm over the combinational edges (DFF D-pins are sinks, DFF
// outputs are sources) and assigns logic levels. A leftover gate indicates
// a combinational cycle.
func (n *Netlist) levelize() error {
	indeg := make([]int, len(n.Gates))
	for id, g := range n.Gates {
		if g.Type.IsSource() {
			continue
		}
		indeg[id] = 0
		for _, f := range g.Fanin {
			if !n.Gates[f].Type.IsSource() {
				indeg[id]++
			}
		}
	}

	n.level = make([]int, len(n.Gates))
	queue := make([]int, 0, len(n.Gates))
	for id, g := range n.Gates {
		if !g.Type.IsSource() && indeg[id] == 0 {
			queue = append(queue, id)
		}
	}
	sort.Ints(queue) // deterministic order

	n.order = make([]int, 0, len(n.Gates))
	for len(queue) > 0 {
		id := queue[0]
		queue = queue[1:]
		n.order = append(n.order, id)

		lvl := 0
		for _, f := range n.Gates[id].Fanin {
			if n.level[f] >= lvl {
				lvl = n.level[f] + 1
			}
		}
		if lvl == 0 {
			lvl = 1 // all fanins are sources
		}
		n.level[id] = lvl

		for _, fo := range n.fanouts[id] {
			if n.Gates[fo].Type.IsSource() {
				continue
			}
			indeg[fo]--
			if indeg[fo] == 0 {
				queue = append(queue, fo)
			}
		}
	}

	want := 0
	for _, g := range n.Gates {
		if !g.Type.IsSource() {
			want++
		}
	}
	if len(n.order) != want {
		return fmt.Errorf("netlist %q: combinational cycle detected (%d of %d gates ordered)",
			n.Name, len(n.order), want)
	}
	return nil
}

// Stats summarizes a netlist for reporting.
type Stats struct {
	Name          string
	Gates         int // total gates including PIs and FFs
	Combinational int
	PIs, POs, FFs int
	Depth         int
	ByType        map[GateType]int
}

// ComputeStats gathers summary statistics.
func (n *Netlist) ComputeStats() Stats {
	s := Stats{
		Name:          n.Name,
		Gates:         len(n.Gates),
		Combinational: len(n.order),
		PIs:           len(n.PIs),
		POs:           len(n.POs),
		FFs:           len(n.FFs),
		Depth:         n.Depth(),
		ByType:        make(map[GateType]int),
	}
	for _, g := range n.Gates {
		s.ByType[g.Type]++
	}
	return s
}

// String renders the stats in a compact single line.
func (s Stats) String() string {
	return fmt.Sprintf("%s: %d gates (%d comb), %d PI, %d PO, %d FF, depth %d",
		s.Name, s.Gates, s.Combinational, s.PIs, s.POs, s.FFs, s.Depth)
}
