package netlist

import "fmt"

// StreamBuilder is the allocation-frugal counterpart of Builder for the
// million-gate ingestion path: instead of one Fanin slice per gate it
// accumulates every fanin reference into a single flat arena (CSR-style
// count-then-slice), interns net names through a byte-token API that
// allocates only on first sight of a symbol, and resolves primary
// outputs at Build like the .bench format requires. The netlist it
// produces is identical — gate IDs, names, fanin order, PO order,
// levelization — to what Builder would have produced from the same
// declaration sequence; the legacy Builder stays as the reference oracle
// (see stream_test.go's equivalence suite).
//
// Net IDs are assigned on first mention (definition or reference), the
// same rule Builder.intern applies, so the two construction paths agree
// ID-for-ID. MarkOutput is name-based and deferred to Build for the same
// reason: OUTPUT directives do not assign IDs in the legacy path.
type StreamBuilder struct {
	name   string
	names  []string
	byName map[string]int32

	typ     []GateType
	defined []bool

	// Flat fanin arena in definition order; gate id's fanins live at
	// fanin[foff[id] : foff[id]+fcnt[id]].
	fanin []int32
	foff  []int32
	fcnt  []int32

	pis    []int32
	ffs    []int32
	noScan []int32
	pos    []string // PO net names, resolved at Build
}

// NewStreamBuilder returns a StreamBuilder for a netlist with the given
// name. sizeHint, when positive, pre-sizes the arenas for roughly that
// many nets (growth is amortized either way; the hint avoids the early
// doublings on multi-million-gate inputs).
func NewStreamBuilder(name string, sizeHint int) *StreamBuilder {
	if sizeHint < 0 {
		sizeHint = 0
	}
	return &StreamBuilder{
		name:    name,
		names:   make([]string, 0, sizeHint),
		byName:  make(map[string]int32, sizeHint),
		typ:     make([]GateType, 0, sizeHint),
		defined: make([]bool, 0, sizeHint),
		foff:    make([]int32, 0, sizeHint),
		fcnt:    make([]int32, 0, sizeHint),
	}
}

// Intern returns the net ID for a name given as a byte token, creating
// an undefined placeholder on first sight. The token may point into a
// transient I/O buffer: the builder copies it only when the symbol is
// new (map lookups on string(tok) do not allocate).
func (b *StreamBuilder) Intern(tok []byte) int32 {
	if id, ok := b.byName[string(tok)]; ok {
		return id
	}
	return b.internNew(string(tok))
}

// InternString is Intern for callers that already hold a string.
func (b *StreamBuilder) InternString(name string) int32 {
	if id, ok := b.byName[name]; ok {
		return id
	}
	return b.internNew(name)
}

func (b *StreamBuilder) internNew(name string) int32 {
	id := int32(len(b.names))
	b.names = append(b.names, name)
	b.typ = append(b.typ, Input) // placeholder; set at definition
	b.defined = append(b.defined, false)
	b.foff = append(b.foff, 0)
	b.fcnt = append(b.fcnt, 0)
	b.byName[name] = id
	return id
}

// NameOf returns the interned name of a net ID.
func (b *StreamBuilder) NameOf(id int32) string { return b.names[id] }

// NumNets returns the number of nets seen so far (defined or referenced).
func (b *StreamBuilder) NumNets() int { return len(b.names) }

func (b *StreamBuilder) define(id int32, typ GateType) error {
	if b.defined[id] {
		return fmt.Errorf("builder %q: net %q defined twice", b.name, b.names[id])
	}
	b.defined[id] = true
	b.typ[id] = typ
	return nil
}

// AddInput declares net id a primary input.
func (b *StreamBuilder) AddInput(id int32) error {
	if err := b.define(id, Input); err != nil {
		return err
	}
	b.pis = append(b.pis, id)
	return nil
}

// AddDFF declares net id a flip-flop (scan cell) whose D pin is net d.
func (b *StreamBuilder) AddDFF(id, d int32) error {
	if err := b.define(id, DFF); err != nil {
		return err
	}
	b.foff[id] = int32(len(b.fanin))
	b.fcnt[id] = 1
	b.fanin = append(b.fanin, d)
	b.ffs = append(b.ffs, id)
	return nil
}

// AddNonScanDFF is AddDFF for a flip-flop excluded from the scan chains.
func (b *StreamBuilder) AddNonScanDFF(id, d int32) error {
	if err := b.AddDFF(id, d); err != nil {
		return err
	}
	b.noScan = append(b.noScan, id)
	return nil
}

// AddGate declares net id a combinational gate computing typ over the
// fanin nets. The fanins slice is copied into the flat arena; callers
// may reuse it across calls.
func (b *StreamBuilder) AddGate(id int32, typ GateType, fanins []int32) error {
	if typ.IsSource() {
		return fmt.Errorf("builder %q: use AddInput/AddDFF for %s", b.name, typ)
	}
	if err := b.define(id, typ); err != nil {
		return err
	}
	b.foff[id] = int32(len(b.fanin))
	b.fcnt[id] = int32(len(fanins))
	b.fanin = append(b.fanin, fanins...)
	return nil
}

// MarkOutput declares the named net a primary output. Like the legacy
// Builder, the name is resolved at Build and does not assign a net ID —
// OUTPUT directives may precede the driver's declaration.
func (b *StreamBuilder) MarkOutput(tok []byte) {
	b.pos = append(b.pos, string(tok))
}

// Build finalizes the netlist: checks every referenced net was defined,
// resolves outputs, re-lays the arena fanins into ID order behind one
// shared backing array, and freezes the structure.
func (b *StreamBuilder) Build() (*Netlist, error) {
	for id, ok := range b.defined {
		if !ok {
			return nil, fmt.Errorf("builder %q: net %q referenced but never defined", b.name, b.names[id])
		}
	}
	num := len(b.names)
	gates := make([]Gate, num)
	flat := make([]int, len(b.fanin))
	pos := 0
	for id := 0; id < num; id++ {
		g := &gates[id]
		g.Type = b.typ[id]
		cnt := int(b.fcnt[id])
		if cnt == 0 {
			continue
		}
		span := flat[pos : pos+cnt : pos+cnt]
		src := b.fanin[b.foff[id] : int(b.foff[id])+cnt]
		for i, f := range src {
			span[i] = int(f)
		}
		g.Fanin = span
		pos += cnt
	}

	n := &Netlist{
		Name:  b.name,
		Gates: gates,
		Names: b.names,
		PIs:   int32sToInts(b.pis),
		FFs:   int32sToInts(b.ffs),
		// byName stays nil: Netlist.GateID builds the index lazily on
		// first lookup, so pure simulation workloads never pay for a
		// million-entry map.
	}
	if len(b.noScan) > 0 {
		n.NoScan = make([]bool, num)
		for _, id := range b.noScan {
			n.NoScan[id] = true
		}
	}
	for _, po := range b.pos {
		id, ok := b.byName[po]
		if !ok {
			return nil, fmt.Errorf("builder %q: output %q never defined", b.name, po)
		}
		n.POs = append(n.POs, int(id))
	}
	if err := n.Freeze(); err != nil {
		return nil, err
	}
	return n, nil
}

func int32sToInts(xs []int32) []int {
	if len(xs) == 0 {
		return nil
	}
	out := make([]int, len(xs))
	for i, x := range xs {
		out[i] = int(x)
	}
	return out
}
