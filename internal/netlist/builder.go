package netlist

import "fmt"

// Builder constructs a Netlist incrementally. It allows forward references
// (a gate may name fanins that are declared later), which the .bench format
// requires, and supports the structural edits Trojan insertion needs.
type Builder struct {
	name   string
	gates  []Gate
	names  []string
	byName map[string]int
	pis    []int
	pos    []string // PO net names, resolved at Build
	ffs    []int
	noScan []int // flip-flop IDs excluded from scan

	defined []bool // whether the net's driver has been declared
}

// NewBuilder returns a Builder for a netlist with the given name.
func NewBuilder(name string) *Builder {
	return &Builder{
		name:   name,
		byName: make(map[string]int),
	}
}

// intern returns the ID for a net name, creating a placeholder if needed.
func (b *Builder) intern(name string) int {
	if id, ok := b.byName[name]; ok {
		return id
	}
	id := len(b.gates)
	b.gates = append(b.gates, Gate{})
	b.names = append(b.names, name)
	b.defined = append(b.defined, false)
	b.byName[name] = id
	return id
}

// AddInput declares a primary input.
func (b *Builder) AddInput(name string) (int, error) {
	id, err := b.define(name, Input, nil)
	if err != nil {
		return 0, err
	}
	b.pis = append(b.pis, id)
	return id, nil
}

// AddDFF declares a flip-flop (scan cell) whose D pin is the named net.
func (b *Builder) AddDFF(name, d string) (int, error) {
	id, err := b.define(name, DFF, []string{d})
	if err != nil {
		return 0, err
	}
	b.ffs = append(b.ffs, id)
	return id, nil
}

// AddNonScanDFF declares a flip-flop excluded from the scan chains — the
// hidden state an attacker's sequential trigger would use (scan access to
// the counter would expose it immediately).
func (b *Builder) AddNonScanDFF(name, d string) (int, error) {
	id, err := b.AddDFF(name, d)
	if err != nil {
		return 0, err
	}
	b.noScan = append(b.noScan, id)
	return id, nil
}

// AddGate declares a combinational gate computing typ over the fanin nets.
func (b *Builder) AddGate(name string, typ GateType, fanins ...string) (int, error) {
	if typ.IsSource() {
		return 0, fmt.Errorf("builder %q: use AddInput/AddDFF for %s", b.name, typ)
	}
	return b.define(name, typ, fanins)
}

func (b *Builder) define(name string, typ GateType, fanins []string) (int, error) {
	id := b.intern(name)
	if b.defined[id] {
		return 0, fmt.Errorf("builder %q: net %q defined twice", b.name, name)
	}
	b.defined[id] = true
	g := Gate{Type: typ, Fanin: make([]int, len(fanins))}
	for i, f := range fanins {
		g.Fanin[i] = b.intern(f)
	}
	b.gates[id] = g
	return id, nil
}

// MarkOutput declares the named net a primary output. The net may be
// declared later; resolution happens at Build.
func (b *Builder) MarkOutput(name string) {
	b.pos = append(b.pos, name)
}

// Has reports whether a net name has been seen (declared or referenced).
func (b *Builder) Has(name string) bool {
	_, ok := b.byName[name]
	return ok
}

// NumGates returns the number of nets seen so far.
func (b *Builder) NumGates() int { return len(b.gates) }

// FreshName returns a net name derived from prefix that does not collide
// with any existing net.
func (b *Builder) FreshName(prefix string) string {
	if !b.Has(prefix) {
		return prefix
	}
	for i := 0; ; i++ {
		name := fmt.Sprintf("%s_%d", prefix, i)
		if !b.Has(name) {
			return name
		}
	}
}

// Build finalizes the netlist: checks every referenced net was defined,
// resolves outputs, and freezes the structure.
func (b *Builder) Build() (*Netlist, error) {
	for id, ok := range b.defined {
		if !ok {
			return nil, fmt.Errorf("builder %q: net %q referenced but never defined", b.name, b.names[id])
		}
	}
	n := &Netlist{
		Name:   b.name,
		Gates:  b.gates,
		Names:  b.names,
		PIs:    b.pis,
		FFs:    b.ffs,
		byName: b.byName,
	}
	if len(b.noScan) > 0 {
		n.NoScan = make([]bool, len(b.gates))
		for _, id := range b.noScan {
			n.NoScan[id] = true
		}
	}
	for _, po := range b.pos {
		id, ok := b.byName[po]
		if !ok {
			return nil, fmt.Errorf("builder %q: output %q never defined", b.name, po)
		}
		n.POs = append(n.POs, id)
	}
	if err := n.Freeze(); err != nil {
		return nil, err
	}
	return n, nil
}

// Clone returns a Builder pre-populated with the contents of an existing
// netlist, so that structural edits (Trojan insertion) can be layered on
// top of a frozen circuit.
func Clone(n *Netlist) *Builder {
	b := NewBuilder(n.Name)
	b.gates = make([]Gate, len(n.Gates))
	for id, g := range n.Gates {
		b.gates[id] = Gate{Type: g.Type, Fanin: append([]int(nil), g.Fanin...)}
	}
	b.names = append([]string(nil), n.Names...)
	b.defined = make([]bool, len(n.Gates))
	for i := range b.defined {
		b.defined[i] = true
	}
	b.byName = make(map[string]int, len(n.Gates))
	for id, name := range n.Names {
		b.byName[name] = id
	}
	b.pis = append([]int(nil), n.PIs...)
	b.ffs = append([]int(nil), n.FFs...)
	for id := range n.Gates {
		if n.IsNoScan(id) {
			b.noScan = append(b.noScan, id)
		}
	}
	for _, po := range n.POs {
		b.pos = append(b.pos, n.Names[po])
	}
	return b
}

// RewireReaders redirects every gate that currently reads net from so that
// it reads net to instead, except for gates listed in exclude. Primary
// output markings are preserved (a PO on from stays on from). This is the
// payload-splice primitive for Trojan insertion.
func (b *Builder) RewireReaders(from, to string, exclude ...string) error {
	fromID, ok := b.byName[from]
	if !ok {
		return fmt.Errorf("builder %q: rewire: unknown net %q", b.name, from)
	}
	toID, ok := b.byName[to]
	if !ok {
		return fmt.Errorf("builder %q: rewire: unknown net %q", b.name, to)
	}
	excluded := make(map[int]bool, len(exclude))
	for _, e := range exclude {
		id, ok := b.byName[e]
		if !ok {
			return fmt.Errorf("builder %q: rewire: unknown excluded net %q", b.name, e)
		}
		excluded[id] = true
	}
	for id := range b.gates {
		if excluded[id] || id == toID {
			continue
		}
		for slot, f := range b.gates[id].Fanin {
			if f == fromID {
				b.gates[id].Fanin[slot] = toID
			}
		}
	}
	return nil
}
