package netlist

import (
	"fmt"
	"testing"
)

// buildBoth drives the legacy Builder and the StreamBuilder through the
// same declaration sequence and returns both results.
type declOp struct {
	kind   string // input, dff, nsdff, gate, output
	name   string
	typ    GateType
	fanins []string
}

func buildBoth(t *testing.T, name string, ops []declOp) (*Netlist, *Netlist) {
	t.Helper()
	lb := NewBuilder(name)
	sb := NewStreamBuilder(name, 0)
	for _, op := range ops {
		var lerr, serr error
		switch op.kind {
		case "input":
			_, lerr = lb.AddInput(op.name)
			serr = sb.AddInput(sb.InternString(op.name))
		case "dff":
			_, lerr = lb.AddDFF(op.name, op.fanins[0])
			id := sb.InternString(op.name)
			serr = sb.AddDFF(id, sb.InternString(op.fanins[0]))
		case "nsdff":
			_, lerr = lb.AddNonScanDFF(op.name, op.fanins[0])
			id := sb.InternString(op.name)
			serr = sb.AddNonScanDFF(id, sb.InternString(op.fanins[0]))
		case "gate":
			_, lerr = lb.AddGate(op.name, op.typ, op.fanins...)
			id := sb.InternString(op.name)
			ids := make([]int32, len(op.fanins))
			for i, f := range op.fanins {
				ids[i] = sb.InternString(f)
			}
			serr = sb.AddGate(id, op.typ, ids)
		case "output":
			lb.MarkOutput(op.name)
			sb.MarkOutput([]byte(op.name))
		}
		if (lerr == nil) != (serr == nil) {
			t.Fatalf("op %+v: legacy err %v, stream err %v", op, lerr, serr)
		}
		if lerr != nil {
			return nil, nil
		}
	}
	ln, lerr := lb.Build()
	sn, serr := sb.Build()
	if (lerr == nil) != (serr == nil) {
		t.Fatalf("build: legacy err %v, stream err %v", lerr, serr)
	}
	if lerr != nil {
		return nil, nil
	}
	return ln, sn
}

func TestStreamBuilderEquivalence(t *testing.T) {
	ops := []declOp{
		{kind: "input", name: "a"},
		{kind: "input", name: "b"},
		{kind: "output", name: "z"}, // marked before its driver exists
		{kind: "dff", name: "q0", fanins: []string{"d0"}},
		{kind: "nsdff", name: "q1", fanins: []string{"d1"}},
		// Forward references: g1 reads g2 before g2 is defined.
		{kind: "gate", name: "g1", typ: Nand, fanins: []string{"a", "g2"}},
		{kind: "gate", name: "g2", typ: Nor, fanins: []string{"b", "q0", "q1"}},
		{kind: "gate", name: "z", typ: Xor, fanins: []string{"g1", "g2"}},
		{kind: "gate", name: "d0", typ: Buf, fanins: []string{"z"}},
		{kind: "gate", name: "d1", typ: Not, fanins: []string{"g1"}},
		{kind: "output", name: "g2"},
	}
	ln, sn := buildBoth(t, "equiv", ops)
	if d := Diff(ln, sn); d != "" {
		t.Fatalf("stream and legacy builders disagree: %s", d)
	}
	// Fanouts (derived by Freeze) must match too.
	for id := range ln.Gates {
		lf, sf := ln.Fanouts(id), sn.Fanouts(id)
		if len(lf) != len(sf) {
			t.Fatalf("gate %d fanout count %d vs %d", id, len(lf), len(sf))
		}
		for i := range lf {
			if lf[i] != sf[i] {
				t.Fatalf("gate %d fanouts differ: %v vs %v", id, lf, sf)
			}
		}
	}
	// Lazy name index answers the same queries.
	for id, name := range ln.Names {
		got, ok := sn.GateID(name)
		if !ok || got != id {
			t.Fatalf("GateID(%q) = %d,%v; want %d", name, got, ok, id)
		}
	}
	if _, ok := sn.GateID("no-such-net"); ok {
		t.Fatal("GateID invented a net")
	}
}

func TestStreamBuilderErrors(t *testing.T) {
	for _, ops := range [][]declOp{
		// Net defined twice.
		{{kind: "input", name: "a"}, {kind: "input", name: "a"}},
		{{kind: "input", name: "a"}, {kind: "gate", name: "a", typ: Buf, fanins: []string{"a"}}},
		// Referenced but never defined.
		{{kind: "input", name: "a"}, {kind: "gate", name: "g", typ: Buf, fanins: []string{"x"}}},
		// Output never defined.
		{{kind: "input", name: "a"}, {kind: "output", name: "zz"}},
	} {
		ln, sn := buildBoth(t, "err", ops)
		if ln != nil || sn != nil {
			t.Fatalf("ops %+v: expected both builders to fail", ops)
		}
	}
	// Source types must go through AddInput/AddDFF.
	sb := NewStreamBuilder("src", 0)
	if err := sb.AddGate(sb.InternString("x"), DFF, nil); err == nil {
		t.Fatal("AddGate accepted a source type")
	}
}

// Satellite regression for stack-depth hazards: a 50k-deep inverter
// chain must build, levelize, walk and simulate without recursion
// blowing the stack — every walk in the netlist core is iterative.
func TestDeepChain50k(t *testing.T) {
	const depth = 50000
	b := NewStreamBuilder("deep", depth+8)
	in := b.InternString("a")
	if err := b.AddInput(in); err != nil {
		t.Fatal(err)
	}
	// One scan cell so the scan infrastructure has something to drive.
	ff := b.InternString("ff0")
	if err := b.AddDFF(ff, b.InternString("d0")); err != nil {
		t.Fatal(err)
	}
	prev := in
	for i := 0; i < depth; i++ {
		id := b.InternString(fmt.Sprintf("c%d", i))
		typ := Not
		if i%2 == 1 {
			typ = Buf
		}
		if err := b.AddGate(id, typ, []int32{prev}); err != nil {
			t.Fatal(err)
		}
		prev = id
	}
	if err := b.AddGate(b.InternString("d0"), Buf, []int32{prev}); err != nil {
		t.Fatal(err)
	}
	b.MarkOutput([]byte(fmt.Sprintf("c%d", depth-1)))
	n, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	if got := n.Depth(); got != depth+1 {
		t.Fatalf("depth = %d, want %d", got, depth+1)
	}

	// The full-depth cone walk must be iterative too.
	w := n.AcquireConeWalker()
	cone := w.Walk([]int{int(in)})
	if len(cone) != depth+1 {
		t.Fatalf("cone size = %d, want %d", len(cone), depth+1)
	}
	w.Release()

	// And the SoA compiles and levelizes identically.
	s := n.SoA()
	if int(s.MaxLevel) != depth+1 {
		t.Fatalf("SoA max level = %d, want %d", s.MaxLevel, depth+1)
	}
}
