package netlist

// SoA is the structure-of-arrays compile of a frozen netlist: the gate
// records are re-laid-out into flat, typed, compact-ID arrays sized for
// the inner loops of the 64-way pattern-parallel (PPSFP) simulation
// engine. Compact IDs are a permutation of the original gate IDs chosen
// so that
//
//   - IDs [0, NumSources) are the value sources (primary inputs and
//     flip-flops), in ascending original-ID order, and
//   - IDs [NumSources, NumGates) are the combinational gates in the
//     netlist's levelized topological order,
//
// which makes a full-netlist evaluation a single forward sweep over a
// dense index range and gives fault propagation level-bucketed worklists
// with no indirection through Gate records. The fanin and fanout lists
// of all gates live in two shared backing arrays addressed by per-gate
// [ptr, ptr+1) ranges — the classic CSR layout.
//
// An SoA is immutable after Compile and may be shared freely between
// goroutines, like the Netlist it was compiled from.
type SoA struct {
	NumGates   int
	NumSources int // compact IDs below this are PIs/FFs

	Orig    []int32 // compact ID -> original gate ID
	Compact []int32 // original gate ID -> compact ID

	Typ []GateType // per compact ID

	// Fanins in CSR form: gate c reads Fanin[FaninPtr[c]:FaninPtr[c+1]]
	// (compact IDs, in the original fanin order — evaluation order of
	// n-ary gates is part of the bit-identity contract). Sources have
	// empty ranges: a DFF's D pin is a frame boundary, not a
	// combinational edge.
	FaninPtr []int32
	Fanin    []int32

	// Combinational fanouts in CSR form: gate c drives the inputs of
	// Fanout[FanoutPtr[c]:FanoutPtr[c+1]] (compact IDs, ascending).
	// Readers that are sources (DFF D pins) are excluded — within one
	// launch frame a fault effect stops at the scan cells, which is
	// exactly the traversal this array exists for.
	FanoutPtr []int32
	Fanout    []int32

	// Level per compact ID (sources 0), and the circuit depth. The
	// compact combinational range is sorted by nondecreasing level.
	Level    []int32
	MaxLevel int
}

// SoA returns the structure-of-arrays compile of the netlist, building
// it on first use. The result is cached on the netlist and shared; it
// must not be modified.
func (n *Netlist) SoA() *SoA {
	n.soaOnce.Do(func() { n.soa = compileSoA(n) })
	return n.soa
}

func compileSoA(n *Netlist) *SoA {
	num := n.NumGates()
	s := &SoA{
		NumGates: num,
		Orig:     make([]int32, 0, num),
		Compact:  make([]int32, num),
		Typ:      make([]GateType, num),
		Level:    make([]int32, num),
	}

	// Compact ID assignment: sources in ascending original order (the
	// gate array is scanned in order), then the levelized topological
	// order the scalar simulator uses — so a forward sweep over the
	// combinational range evaluates gates in the exact same sequence.
	for id, g := range n.Gates {
		if g.Type.IsSource() {
			s.Compact[id] = int32(len(s.Orig))
			s.Orig = append(s.Orig, int32(id))
		}
	}
	s.NumSources = len(s.Orig)
	for _, id := range n.TopoOrder() {
		s.Compact[id] = int32(len(s.Orig))
		s.Orig = append(s.Orig, int32(id))
	}

	for c, id := range s.Orig {
		g := &n.Gates[id]
		s.Typ[c] = g.Type
		s.Level[c] = int32(n.Level(int(id)))
		if int(s.Level[c]) > s.MaxLevel {
			s.MaxLevel = int(s.Level[c])
		}
	}

	// Fanin CSR over combinational gates (sources keep empty ranges).
	s.FaninPtr = make([]int32, num+1)
	total := 0
	for c, id := range s.Orig {
		s.FaninPtr[c] = int32(total)
		if !s.Typ[c].IsSource() {
			total += len(n.Gates[id].Fanin)
		}
	}
	s.FaninPtr[num] = int32(total)
	s.Fanin = make([]int32, 0, total)
	for c, id := range s.Orig {
		if s.Typ[c].IsSource() {
			continue
		}
		for _, f := range n.Gates[id].Fanin {
			s.Fanin = append(s.Fanin, s.Compact[f])
		}
	}

	// Combinational-fanout CSR. The netlist's fanout lists are in
	// ascending reader original-ID order; mapping through Compact keeps
	// determinism (the traversal order never affects results — fault
	// propagation is order-independent — but reproducible layouts make
	// debugging sane).
	counts := make([]int32, num)
	for c, id := range s.Orig {
		for _, r := range n.Fanouts(int(id)) {
			if !n.Gates[r].Type.IsSource() {
				counts[c]++
			}
		}
	}
	s.FanoutPtr = make([]int32, num+1)
	total = 0
	for c := 0; c < num; c++ {
		s.FanoutPtr[c] = int32(total)
		total += int(counts[c])
	}
	s.FanoutPtr[num] = int32(total)
	s.Fanout = make([]int32, total)
	fill := make([]int32, num)
	copy(fill, s.FanoutPtr[:num])
	for c, id := range s.Orig {
		for _, r := range n.Fanouts(int(id)) {
			if n.Gates[r].Type.IsSource() {
				continue
			}
			s.Fanout[fill[c]] = s.Compact[r]
			fill[c]++
		}
	}
	return s
}

// FaninOf returns the compact fanin range of compact gate c (read-only).
func (s *SoA) FaninOf(c int32) []int32 { return s.Fanin[s.FaninPtr[c]:s.FaninPtr[c+1]] }

// FanoutOf returns the compact combinational-fanout range of compact
// gate c (read-only).
func (s *SoA) FanoutOf(c int32) []int32 { return s.Fanout[s.FanoutPtr[c]:s.FanoutPtr[c+1]] }
