package netlist

import "fmt"

// Diff reports the first structural difference between two frozen
// netlists, or "" when they are identical: same IDs, names, gate types,
// fanin lists (nil and empty are the same list), port orders, scan
// exclusions, levels and topological order. It is the oracle the
// streaming-vs-legacy equivalence tests and fuzz targets assert with.
func Diff(a, b *Netlist) string {
	if len(a.Gates) != len(b.Gates) {
		return fmt.Sprintf("gate count %d vs %d", len(a.Gates), len(b.Gates))
	}
	for id := range a.Gates {
		ga, gb := &a.Gates[id], &b.Gates[id]
		if a.Names[id] != b.Names[id] {
			return fmt.Sprintf("gate %d name %q vs %q", id, a.Names[id], b.Names[id])
		}
		if ga.Type != gb.Type {
			return fmt.Sprintf("gate %d (%s) type %s vs %s", id, a.Names[id], ga.Type, gb.Type)
		}
		if !intsEqual(ga.Fanin, gb.Fanin) {
			return fmt.Sprintf("gate %d (%s) fanin %v vs %v", id, a.Names[id], ga.Fanin, gb.Fanin)
		}
		if a.IsNoScan(id) != b.IsNoScan(id) {
			return fmt.Sprintf("gate %d (%s) no-scan %v vs %v", id, a.Names[id], a.IsNoScan(id), b.IsNoScan(id))
		}
	}
	if !intsEqual(a.PIs, b.PIs) {
		return fmt.Sprintf("PIs %v vs %v", a.PIs, b.PIs)
	}
	if !intsEqual(a.POs, b.POs) {
		return fmt.Sprintf("POs %v vs %v", a.POs, b.POs)
	}
	if !intsEqual(a.FFs, b.FFs) {
		return fmt.Sprintf("FFs %v vs %v", a.FFs, b.FFs)
	}
	if !intsEqual(a.order, b.order) {
		return "topological orders differ"
	}
	if !intsEqual(a.level, b.level) {
		return "levelizations differ"
	}
	return ""
}

func intsEqual(a, b []int) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
