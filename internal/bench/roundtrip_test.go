package bench

import (
	"bytes"
	"testing"
	"testing/quick"

	"superpose/internal/logic"
	"superpose/internal/netlist"
	"superpose/internal/sim"
	"superpose/internal/trust"
)

// TestRoundTripGeneratedCircuits is a randomized structural property test:
// any generated full-scan circuit must survive Write→Parse with identical
// structure AND identical simulation behaviour.
func TestRoundTripGeneratedCircuits(t *testing.T) {
	f := func(seedRaw uint16, ffsRaw, combRaw uint8) bool {
		p := trust.Params{
			Name:   "rt",
			PIs:    2 + int(ffsRaw%4),
			POs:    2 + int(combRaw%4),
			FFs:    4 + int(ffsRaw%16),
			Comb:   40 + int(combRaw),
			Levels: 4,
			Seed:   uint64(seedRaw),
		}
		orig, err := trust.Generate(p)
		if err != nil {
			t.Logf("generate: %v", err)
			return false
		}
		var buf bytes.Buffer
		if err := Write(&buf, orig); err != nil {
			t.Logf("write: %v", err)
			return false
		}
		back, err := Parse(&buf, "rt")
		if err != nil {
			t.Logf("parse: %v", err)
			return false
		}
		if back.NumGates() != orig.NumGates() {
			return false
		}
		return sameSimulation(orig, back)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 25}); err != nil {
		t.Error(err)
	}
}

// sameSimulation drives both netlists with the same random stimuli (by
// source name) and compares every net's response (by name).
func sameSimulation(a, b *netlist.Netlist) bool {
	sa, sb := sim.New(a), sim.New(b)
	srcA, srcB := sa.SourceWords(), sb.SourceWords()
	seed := uint64(12345)
	for _, id := range append(append([]int{}, a.PIs...), a.FFs...) {
		seed = seed*6364136223846793005 + 1442695040888963407
		srcA[id] = logic.Word(seed)
		idB, ok := b.GateID(a.NameOf(id))
		if !ok {
			return false
		}
		srcB[idB] = logic.Word(seed)
	}
	va := sa.Run(srcA)
	vb := sb.Run(srcB)
	for id := range va {
		idB, ok := b.GateID(a.NameOf(id))
		if !ok || va[id] != vb[idB] {
			return false
		}
	}
	return true
}
