// Package bench reads and writes the ISCAS-85/89 ".bench" netlist format,
// the interchange format used by the Trust-Hub benchmark suite.
//
// The grammar is line-oriented:
//
//	# comment
//	INPUT(G0)
//	OUTPUT(G17)
//	G10 = DFF(G14)
//	G12 = NAND(G1, G3)
//
// Net names may contain any characters except whitespace, '=', '(', ')'
// and ','. Gate type names are case-insensitive.
package bench

import (
	"bufio"
	"fmt"
	"io"
	"strings"

	"superpose/internal/netlist"
)

// Parse reads a .bench netlist from r. The name is attached to the
// resulting netlist (the format itself carries no name).
func Parse(r io.Reader, name string) (*netlist.Netlist, error) {
	b := netlist.NewBuilder(name)
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 64*1024), 16*1024*1024)
	lineno := 0
	for sc.Scan() {
		lineno++
		line := sc.Text()
		if i := strings.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = strings.TrimSpace(line)
		if line == "" {
			continue
		}
		if err := parseLine(b, line); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, lineno, err)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, fmt.Errorf("%s: %w", name, err)
	}
	return b.Build()
}

func parseLine(b *netlist.Builder, line string) error {
	// Directive form: INPUT(x) / OUTPUT(x).
	if upper := strings.ToUpper(line); strings.HasPrefix(upper, "INPUT(") || strings.HasPrefix(upper, "OUTPUT(") {
		open := strings.IndexByte(line, '(')
		closeIdx := strings.LastIndexByte(line, ')')
		if closeIdx < open {
			return fmt.Errorf("malformed directive %q", line)
		}
		arg := strings.TrimSpace(line[open+1 : closeIdx])
		if arg == "" {
			return fmt.Errorf("empty net name in %q", line)
		}
		if strings.HasPrefix(upper, "INPUT(") {
			_, err := b.AddInput(arg)
			return err
		}
		b.MarkOutput(arg)
		return nil
	}

	// Assignment form: name = TYPE(f1, f2, ...).
	eq := strings.IndexByte(line, '=')
	if eq < 0 {
		return fmt.Errorf("expected assignment, got %q", line)
	}
	lhs := strings.TrimSpace(line[:eq])
	rhs := strings.TrimSpace(line[eq+1:])
	if lhs == "" {
		return fmt.Errorf("empty net name in %q", line)
	}
	open := strings.IndexByte(rhs, '(')
	closeIdx := strings.LastIndexByte(rhs, ')')
	if open < 0 || closeIdx < open {
		return fmt.Errorf("malformed gate expression %q", rhs)
	}
	typName := strings.ToUpper(strings.TrimSpace(rhs[:open]))
	// Common .bench aliases.
	switch typName {
	case "BUFF":
		typName = "BUF"
	case "INV":
		typName = "NOT"
	}
	typ, ok := netlist.ParseGateType(typName)
	if !ok {
		return fmt.Errorf("unknown gate type %q", strings.TrimSpace(rhs[:open]))
	}
	var fanins []string
	for _, f := range strings.Split(rhs[open+1:closeIdx], ",") {
		f = strings.TrimSpace(f)
		if f == "" {
			return fmt.Errorf("empty fanin in %q", line)
		}
		fanins = append(fanins, f)
	}
	switch typ {
	case netlist.Input:
		return fmt.Errorf("INPUT is a directive, not a gate type: %q", line)
	case netlist.DFF:
		if len(fanins) != 1 {
			return fmt.Errorf("DFF takes exactly one fanin: %q", line)
		}
		_, err := b.AddDFF(lhs, fanins[0])
		return err
	default:
		_, err := b.AddGate(lhs, typ, fanins...)
		return err
	}
}

// Write serializes a netlist in .bench format. Output order is: inputs,
// outputs, flip-flops, then combinational gates in topological order, which
// round-trips through Parse to an equivalent netlist.
func Write(w io.Writer, n *netlist.Netlist) error {
	bw := bufio.NewWriter(w)
	fmt.Fprintf(bw, "# %s\n", n.Name)
	fmt.Fprintf(bw, "# %s\n", n.ComputeStats())
	for _, pi := range n.PIs {
		fmt.Fprintf(bw, "INPUT(%s)\n", n.Names[pi])
	}
	for _, po := range n.POs {
		fmt.Fprintf(bw, "OUTPUT(%s)\n", n.Names[po])
	}
	for _, ff := range n.FFs {
		fmt.Fprintf(bw, "%s = DFF(%s)\n", n.Names[ff], n.Names[n.Gates[ff].Fanin[0]])
	}
	for _, id := range n.TopoOrder() {
		g := n.Gates[id]
		names := make([]string, len(g.Fanin))
		for i, f := range g.Fanin {
			names[i] = n.Names[f]
		}
		fmt.Fprintf(bw, "%s = %s(%s)\n", n.Names[id], g.Type, strings.Join(names, ", "))
	}
	return bw.Flush()
}
