package bench

import (
	"bytes"
	"reflect"
	"strings"
	"testing"

	"superpose/internal/netlist"
)

const s27 = `
# s27 (ISCAS-89), full-scan view
INPUT(G0)
INPUT(G1)
INPUT(G2)
INPUT(G3)
OUTPUT(G17)
G5 = DFF(G10)
G6 = DFF(G11)
G7 = DFF(G13)
G14 = NOT(G0)
G8 = AND(G14, G6)
G15 = OR(G12, G8)
G16 = OR(G3, G8)
G9 = NAND(G16, G15)
G10 = NOR(G14, G11)
G11 = NOR(G5, G9)
G12 = NOR(G1, G7)
G13 = NOR(G2, G12)
G17 = NOT(G11)
`

func parseS27(t *testing.T) *netlist.Netlist {
	t.Helper()
	n, err := Parse(strings.NewReader(s27), "s27")
	if err != nil {
		t.Fatal(err)
	}
	return n
}

func TestParseS27(t *testing.T) {
	n := parseS27(t)
	s := n.ComputeStats()
	if s.PIs != 4 || s.POs != 1 || s.FFs != 3 {
		t.Fatalf("s27 stats = %+v", s)
	}
	if s.Combinational != 10 {
		t.Errorf("combinational gates = %d, want 10", s.Combinational)
	}
	g17, ok := n.GateID("G17")
	if !ok || !n.IsPO(g17) {
		t.Error("G17 must be a PO")
	}
	if n.Gates[g17].Type != netlist.Not {
		t.Errorf("G17 type = %v, want NOT", n.Gates[g17].Type)
	}
}

func TestRoundTrip(t *testing.T) {
	n := parseS27(t)
	var buf bytes.Buffer
	if err := Write(&buf, n); err != nil {
		t.Fatal(err)
	}
	m, err := Parse(&buf, "s27rt")
	if err != nil {
		t.Fatalf("re-parse: %v\n%s", err, buf.String())
	}

	// Same structure: every gate has the same type and fanin set by name.
	if m.NumGates() != n.NumGates() {
		t.Fatalf("gate count %d != %d", m.NumGates(), n.NumGates())
	}
	for id := range n.Gates {
		name := n.NameOf(id)
		mid, ok := m.GateID(name)
		if !ok {
			t.Fatalf("net %s missing after round trip", name)
		}
		if m.Gates[mid].Type != n.Gates[id].Type {
			t.Errorf("net %s type %v != %v", name, m.Gates[mid].Type, n.Gates[id].Type)
		}
		var want, got []string
		for _, f := range n.Gates[id].Fanin {
			want = append(want, n.NameOf(f))
		}
		for _, f := range m.Gates[mid].Fanin {
			got = append(got, m.NameOf(f))
		}
		if !reflect.DeepEqual(want, got) {
			t.Errorf("net %s fanins %v != %v", name, got, want)
		}
	}
	// PO set preserved.
	if len(m.POs) != len(n.POs) || m.NameOf(m.POs[0]) != n.NameOf(n.POs[0]) {
		t.Error("POs not preserved")
	}
}

func TestCommentsAndBlankLines(t *testing.T) {
	src := "# header\n\nINPUT(a)  # trailing comment\n   \nOUTPUT(b)\nb = NOT(a)\n"
	n, err := Parse(strings.NewReader(src), "c")
	if err != nil {
		t.Fatal(err)
	}
	if n.NumGates() != 2 {
		t.Errorf("NumGates = %d", n.NumGates())
	}
}

func TestCaseInsensitiveTypesAndAliases(t *testing.T) {
	src := "INPUT(a)\nINPUT(b)\nOUTPUT(z)\nx = nand(a, b)\ny = buff(x)\nw = inv(y)\nz = Xor(w, a)\n"
	n, err := Parse(strings.NewReader(src), "alias")
	if err != nil {
		t.Fatal(err)
	}
	id := func(s string) netlist.GateType {
		g, ok := n.GateID(s)
		if !ok {
			t.Fatalf("missing %s", s)
		}
		return n.Gates[g].Type
	}
	if id("x") != netlist.Nand || id("y") != netlist.Buf || id("w") != netlist.Not || id("z") != netlist.Xor {
		t.Error("alias/case handling wrong")
	}
}

func TestParseErrors(t *testing.T) {
	cases := map[string]string{
		"no assignment":    "INPUT(a)\nfoo bar\n",
		"unknown type":     "INPUT(a)\nx = FROB(a)\n",
		"empty fanin":      "INPUT(a)\nx = AND(a, )\n",
		"empty name":       "INPUT()\n",
		"malformed expr":   "INPUT(a)\nx = AND a\n",
		"malformed direct": "INPUT(a\n",
		"empty lhs":        " = AND(a, b)\n",
		"INPUT as gate":    "INPUT(a)\nx = INPUT(a)\n",
		"DFF two fanins":   "INPUT(a)\nINPUT(b)\nx = DFF(a, b)\n",
		"undefined net":    "INPUT(a)\nOUTPUT(x)\nx = AND(a, ghost)\n",
	}
	for label, src := range cases {
		if _, err := Parse(strings.NewReader(src), label); err == nil {
			t.Errorf("%s: expected parse error", label)
		}
	}
}

func TestErrorIncludesLineNumber(t *testing.T) {
	src := "INPUT(a)\nINPUT(b)\nx = FROB(a)\n"
	_, err := Parse(strings.NewReader(src), "lineno")
	if err == nil || !strings.Contains(err.Error(), "lineno:3") {
		t.Errorf("error = %v, want lineno:3 prefix", err)
	}
}

func TestWriteDeterministic(t *testing.T) {
	n := parseS27(t)
	var b1, b2 bytes.Buffer
	if err := Write(&b1, n); err != nil {
		t.Fatal(err)
	}
	if err := Write(&b2, n); err != nil {
		t.Fatal(err)
	}
	if b1.String() != b2.String() {
		t.Error("Write must be deterministic")
	}
}
