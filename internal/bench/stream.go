package bench

import (
	"bytes"
	"fmt"
	"io"
	"unicode"
	"unicode/utf8"

	"superpose/internal/netlist"
	"superpose/internal/textio"
)

// ParseStream reads a .bench netlist from r through the streaming
// ingestion path: lines are tokenized in place from a fixed bufio
// window, net names intern through netlist.StreamBuilder's byte-token
// API (allocating only on first sight of a symbol), and fanins land in
// a flat arena instead of one slice per gate. The accepted language and
// the resulting netlist are identical to Parse — the fuzz targets hold
// the two paths to gate-for-gate agreement — but peak memory is the
// interned symbol table plus the arenas rather than per-line garbage,
// which is what lets 10⁶–10⁷-gate files ingest within a few times
// their CSR footprint.
func ParseStream(r io.Reader, name string) (*netlist.Netlist, error) {
	return ParseStreamSized(r, name, 0)
}

// ParseStreamSized is ParseStream with a pre-sizing hint for the
// expected number of nets (see netlist.NewStreamBuilder).
func ParseStreamSized(r io.Reader, name string, sizeHint int) (*netlist.Netlist, error) {
	b := netlist.NewStreamBuilder(name, sizeHint)
	lines := textio.NewLines(r, maxLine)
	var ids []int32 // reusable per-line fanin scratch
	lineno := 0
	for {
		line, err := lines.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			return nil, fmt.Errorf("%s: %w", name, err)
		}
		lineno++
		if i := bytes.IndexByte(line, '#'); i >= 0 {
			line = line[:i]
		}
		line = bytes.TrimSpace(line)
		if len(line) == 0 {
			continue
		}
		if ids, err = parseLineStream(b, line, ids); err != nil {
			return nil, fmt.Errorf("%s:%d: %w", name, lineno, err)
		}
	}
	return b.Build()
}

// maxLine mirrors the legacy parser's bufio.Scanner token limit.
const maxLine = 16 * 1024 * 1024

func parseLineStream(b *netlist.StreamBuilder, line []byte, ids []int32) ([]int32, error) {
	// Directive form: INPUT(x) / OUTPUT(x).
	isInput := hasUpperPrefix(line, "INPUT(")
	if isInput || hasUpperPrefix(line, "OUTPUT(") {
		open := bytes.IndexByte(line, '(')
		closeIdx := bytes.LastIndexByte(line, ')')
		if closeIdx < open {
			return ids, fmt.Errorf("malformed directive %q", line)
		}
		arg := bytes.TrimSpace(line[open+1 : closeIdx])
		if len(arg) == 0 {
			return ids, fmt.Errorf("empty net name in %q", line)
		}
		if isInput {
			return ids, b.AddInput(b.Intern(arg))
		}
		b.MarkOutput(arg)
		return ids, nil
	}

	// Assignment form: name = TYPE(f1, f2, ...).
	eq := bytes.IndexByte(line, '=')
	if eq < 0 {
		return ids, fmt.Errorf("expected assignment, got %q", line)
	}
	lhs := bytes.TrimSpace(line[:eq])
	rhs := bytes.TrimSpace(line[eq+1:])
	if len(lhs) == 0 {
		return ids, fmt.Errorf("empty net name in %q", line)
	}
	open := bytes.IndexByte(rhs, '(')
	closeIdx := bytes.LastIndexByte(rhs, ')')
	if open < 0 || closeIdx < open {
		return ids, fmt.Errorf("malformed gate expression %q", rhs)
	}
	typ, ok := parseTypeToken(bytes.TrimSpace(rhs[:open]))
	if !ok {
		return ids, fmt.Errorf("unknown gate type %q", bytes.TrimSpace(rhs[:open]))
	}

	// Validate the fanin fields before interning anything, so rejected
	// lines leave the symbol table exactly as the legacy parser would.
	content := rhs[open+1 : closeIdx]
	nFanin := 0
	for field, rest := splitComma(content); ; field, rest = splitComma(rest) {
		if len(bytes.TrimSpace(field)) == 0 {
			return ids, fmt.Errorf("empty fanin in %q", line)
		}
		nFanin++
		if rest == nil {
			break
		}
	}
	switch typ {
	case netlist.Input:
		return ids, fmt.Errorf("INPUT is a directive, not a gate type: %q", line)
	case netlist.DFF:
		if nFanin != 1 {
			return ids, fmt.Errorf("DFF takes exactly one fanin: %q", line)
		}
	}

	// Interning order matches the legacy Builder: LHS first, then the
	// fanins left to right, so both paths assign identical net IDs.
	id := b.Intern(lhs)
	ids = ids[:0]
	for field, rest := splitComma(content); ; field, rest = splitComma(rest) {
		ids = append(ids, b.Intern(bytes.TrimSpace(field)))
		if rest == nil {
			break
		}
	}
	if typ == netlist.DFF {
		return ids, b.AddDFF(id, ids[0])
	}
	return ids, b.AddGate(id, typ, ids)
}

// splitComma returns the bytes before the first comma and the remainder
// after it (nil when no comma remains — note nil, not empty: a trailing
// comma yields a final empty field, exactly like strings.Split).
func splitComma(s []byte) (field, rest []byte) {
	if i := bytes.IndexByte(s, ','); i >= 0 {
		return s[:i], s[i+1:]
	}
	return s, nil
}

// hasUpperPrefix reports whether strings.ToUpper(line) would start with
// prefix (an ASCII upper-case literal). Decoding rune by rune keeps the
// exotic cases — 'ı' upper-cases to ASCII 'I' — identical to the legacy
// parser without materializing the upper-cased line.
func hasUpperPrefix(line []byte, prefix string) bool {
	i := 0
	for j := 0; j < len(prefix); j++ {
		if i >= len(line) {
			return false
		}
		r, sz := utf8.DecodeRune(line[i:])
		if unicode.ToUpper(r) != rune(prefix[j]) {
			return false
		}
		i += sz
	}
	return true
}

// parseTypeToken resolves a gate-type token, upper-casing rune-wise the
// way strings.ToUpper would and folding the BUFF/INV aliases.
func parseTypeToken(tok []byte) (netlist.GateType, bool) {
	var up [8]byte // longest accepted name is OUTPUT/6; 8 covers all
	n := 0
	for i := 0; i < len(tok); {
		r, sz := utf8.DecodeRune(tok[i:])
		i += sz
		u := unicode.ToUpper(r)
		if u >= utf8.RuneSelf || n == len(up) {
			return 0, false // non-ASCII or too long: no type matches
		}
		up[n] = byte(u)
		n++
	}
	switch string(up[:n]) {
	case "INPUT":
		return netlist.Input, true
	case "DFF":
		return netlist.DFF, true
	case "BUF", "BUFF":
		return netlist.Buf, true
	case "NOT", "INV":
		return netlist.Not, true
	case "AND":
		return netlist.And, true
	case "NAND":
		return netlist.Nand, true
	case "OR":
		return netlist.Or, true
	case "NOR":
		return netlist.Nor, true
	case "XOR":
		return netlist.Xor, true
	case "XNOR":
		return netlist.Xnor, true
	}
	return 0, false
}
