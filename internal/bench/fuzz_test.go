package bench

import (
	"bytes"
	"strings"
	"testing"

	"superpose/internal/netlist"
)

// FuzzParse throws arbitrary text at the .bench parsers: neither may
// panic, the streaming parser must agree with the legacy one
// gate-for-gate (or both must reject), and anything accepted must
// survive a Write/Parse round trip.
func FuzzParse(f *testing.F) {
	f.Add(s27)
	f.Add("INPUT(a)\nOUTPUT(b)\nb = NOT(a)\n")
	f.Add("# only a comment\n")
	f.Add("x = AND(a, b)\n")
	f.Add("INPUT(a)\nx = DFF(a)\nOUTPUT(x)\n")
	f.Add("OUTPUT(z)\nINPUT(a)\nz = BUFF(a)\ny = INV(z)\n")
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(strings.NewReader(src), "fuzz")
		sn, serr := ParseStream(strings.NewReader(src), "fuzz")
		if (err == nil) != (serr == nil) {
			t.Fatalf("parser disagreement: legacy err %v, streaming err %v\n%s", err, serr, src)
		}
		if err != nil {
			return
		}
		if d := netlist.Diff(n, sn); d != "" {
			t.Fatalf("streaming parse differs from legacy: %s\n%s", d, src)
		}
		var buf bytes.Buffer
		if err := Write(&buf, n); err != nil {
			t.Fatalf("accepted netlist failed to serialize: %v", err)
		}
		m, err := Parse(&buf, "fuzz2")
		if err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, buf.String())
		}
		if m.NumGates() != n.NumGates() {
			t.Fatalf("round trip changed gate count %d -> %d", n.NumGates(), m.NumGates())
		}
	})
}
