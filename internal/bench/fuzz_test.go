package bench

import (
	"bytes"
	"strings"
	"testing"
)

// FuzzParse throws arbitrary text at the .bench parser: it must never
// panic, and anything it accepts must survive a Write/Parse round trip.
func FuzzParse(f *testing.F) {
	f.Add(s27)
	f.Add("INPUT(a)\nOUTPUT(b)\nb = NOT(a)\n")
	f.Add("# only a comment\n")
	f.Add("x = AND(a, b)\n")
	f.Add("INPUT(a)\nx = DFF(a)\nOUTPUT(x)\n")
	f.Fuzz(func(t *testing.T, src string) {
		n, err := Parse(strings.NewReader(src), "fuzz")
		if err != nil {
			return
		}
		var buf bytes.Buffer
		if err := Write(&buf, n); err != nil {
			t.Fatalf("accepted netlist failed to serialize: %v", err)
		}
		m, err := Parse(&buf, "fuzz2")
		if err != nil {
			t.Fatalf("round trip failed: %v\n%s", err, buf.String())
		}
		if m.NumGates() != n.NumGates() {
			t.Fatalf("round trip changed gate count %d -> %d", n.NumGates(), m.NumGates())
		}
	})
}
