package netio

import (
	"path/filepath"
	"testing"

	"superpose/internal/trust"
)

func TestRoundTripBothFormats(t *testing.T) {
	host, err := trust.Generate(trust.Params{
		Name: "io", PIs: 3, POs: 3, FFs: 8, Comb: 60, Levels: 4, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	for _, ext := range []string{".bench", ".v"} {
		path := filepath.Join(dir, "c"+ext)
		if err := WriteFile(path, host); err != nil {
			t.Fatalf("%s: %v", ext, err)
		}
		back, err := ReadFile(path)
		if err != nil {
			t.Fatalf("%s: %v", ext, err)
		}
		if back.NumGates() != host.NumGates() {
			t.Errorf("%s: %d gates, want %d", ext, back.NumGates(), host.NumGates())
		}
	}
}

func TestUnknownFormat(t *testing.T) {
	host, err := trust.Generate(trust.Params{
		Name: "io", PIs: 2, POs: 2, FFs: 4, Comb: 30, Levels: 3, Seed: 2,
	})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	if err := WriteFile(filepath.Join(dir, "x.json"), host); err == nil {
		t.Error("unknown write format must error")
	}
	if _, err := ReadFile(filepath.Join(dir, "missing.bench")); err == nil {
		t.Error("missing file must error")
	}
	bad := filepath.Join(dir, "x.txt")
	if err := WriteFile(filepath.Join(dir, "x.bench"), host); err != nil {
		t.Fatal(err)
	}
	if _, err := ReadFile(bad); err == nil {
		t.Error("unknown read format must error")
	}
}
