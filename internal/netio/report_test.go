package netio

import (
	"bytes"
	"math"
	"path/filepath"
	"reflect"
	"testing"

	"superpose/internal/core"
	"superpose/internal/scan"
	"superpose/internal/stats"
)

func samplePattern() *scan.Pattern {
	return &scan.Pattern{
		Scan: [][]bool{{true, false, true}, {false, false, true}},
		PI:   []bool{true, false},
	}
}

func sampleReport(unstable bool) *core.Report {
	p := samplePattern()
	q := p.Clone()
	q.Scan[0][1] = true
	rep := &core.Report{
		ATPGSummary: "atpg: 12 patterns",
		SeedReading: core.Reading{Observed: 104.25, Nominal: 100, RPD: 0.0425},
		SeedPattern: p,
		Adaptive: &core.AdaptiveResult{
			Steps: []core.AdaptiveStep{
				{Pattern: p, Reading: core.Reading{Observed: 104.25, Nominal: 100, RPD: 0.0425},
					Flipped: core.CellRef{Chain: -1, Index: -1}, Transitions: 3},
				{Pattern: q, Reading: core.Reading{Observed: 106.5, Nominal: 101, RPD: 0.0545},
					Flipped: core.CellRef{Chain: 0, Index: 1}, Transitions: 4},
			},
			Best: 1,
			Pairs: []core.PairCandidate{{
				A: p, B: q, Critical: core.CellRef{Chain: 0, Index: 1},
				SRPD: 0.31, Significance: 2.4,
			}},
		},
		AdaptiveReading: core.Reading{Observed: 106.5, Nominal: 101, RPD: 0.0545},
		HasPair:         true,
		Superposition: core.PairAnalysis{
			A: p, B: q,
			ObservedA: 104.25, ObservedB: 106.5,
			NominalA: 100, NominalB: 101,
			CommonCount: 17, AUniqueCount: 3, BUniqueCount: 2,
			NominalAUnique: 4.5, NominalBUnique: 3.25,
			UniqueEnergySq: 11.0625, SRPD: 0.31,
		},
		Strategic: core.StrategicResult{
			Initial: core.PairAnalysis{SRPD: 0.31, UniqueEnergySq: 11.0625},
			Final:   core.PairAnalysis{SRPD: 0.42, UniqueEnergySq: 6.5},
			Applied: []core.AppliedMod{{
				Cell: core.CellRef{Chain: 1, Index: 2}, Kind: core.EliminateTwo,
				SRPDBefore: 0.31, SRPDAfter: 0.42,
			}},
		},
		Confirmed: core.PairAnalysis{SRPD: 0.41, UniqueEnergySq: 6.5},
		Acquisition: core.AcquisitionStats{
			Readings: 640, Passes: 41, Raw: 1920, Dropped: 12,
			Rejected: 7, Latched: 2, Retries: 3, Unstable: 1,
		},
		UnstableSeeds: 1,
		UnstablePairs: 0,
		FinalSRPD:     0.41,
		FinalZ:        4.9,
		Varsigma:      0.25,
		Detected:      true,
	}
	if unstable {
		// The graceful-degradation outcome: every flagged pair unstable.
		rep.FinalSRPD = math.NaN()
		rep.FinalZ = math.NaN()
		rep.Confirmed.ObservedA = math.NaN()
		rep.Confirmed.ObservedB = math.NaN()
		rep.Confirmed.SRPD = math.NaN()
		rep.SeedReading = core.Reading{
			Observed: math.NaN(), Nominal: math.NaN(), RPD: math.NaN(),
		}
		rep.Detected = false
	}
	return rep
}

// encodeDecodeEncode round-trips a value and returns both encodings; the
// caller asserts byte equality, which (unlike reflect.DeepEqual) treats
// the NaN verdict fields as equal to themselves.
func TestReportRoundTrip(t *testing.T) {
	for _, tc := range []struct {
		name     string
		unstable bool
	}{{"finite", false}, {"unstable_nan", true}} {
		t.Run(tc.name, func(t *testing.T) {
			rep := sampleReport(tc.unstable)
			var first bytes.Buffer
			if err := EncodeReport(&first, rep); err != nil {
				t.Fatalf("encode: %v", err)
			}
			got, err := DecodeReport(bytes.NewReader(first.Bytes()))
			if err != nil {
				t.Fatalf("decode: %v", err)
			}
			var second bytes.Buffer
			if err := EncodeReport(&second, got); err != nil {
				t.Fatalf("re-encode: %v", err)
			}
			if !bytes.Equal(first.Bytes(), second.Bytes()) {
				t.Errorf("report round-trip not bit-identical:\nfirst:\n%s\nsecond:\n%s",
					first.String(), second.String())
			}
			// Spot-check structure beyond byte equality.
			if got.HasPair != rep.HasPair || got.Detected != rep.Detected {
				t.Errorf("verdict fields changed: got HasPair=%v Detected=%v", got.HasPair, got.Detected)
			}
			if !got.SeedPattern.Equal(rep.SeedPattern) {
				t.Errorf("seed pattern changed across round trip")
			}
			if tc.unstable {
				if !math.IsNaN(got.FinalSRPD) || !math.IsNaN(got.FinalZ) {
					t.Errorf("NaN verdict not preserved: srpd=%v z=%v", got.FinalSRPD, got.FinalZ)
				}
			} else if got.FinalSRPD != rep.FinalSRPD {
				t.Errorf("FinalSRPD = %v, want %v", got.FinalSRPD, rep.FinalSRPD)
			}
			if !reflect.DeepEqual(got.Acquisition, rep.Acquisition) {
				t.Errorf("acquisition counters changed: %+v vs %+v", got.Acquisition, rep.Acquisition)
			}
		})
	}
}

func TestLotReportRoundTrip(t *testing.T) {
	stable := sampleReport(false)
	unstable := sampleReport(true)
	lr := &core.LotReport{
		Dies: []core.DieResult{
			{Die: 0, Seed: 7, Report: stable, FinalMag: math.Abs(stable.FinalSRPD)},
			{Die: 1, Seed: 7 + 0x9E37, Report: unstable, FinalMag: math.NaN()},
		},
		Detected:    1,
		SRPD:        stats.Summary{N: 1, Mean: 0.41, Std: 0, Min: 0.41, Max: 0.41},
		Unstable:    1,
		Acquisition: core.AcquisitionStats{Readings: 1280, Passes: 82, Raw: 3840},
	}
	var first bytes.Buffer
	if err := EncodeLotReport(&first, lr); err != nil {
		t.Fatalf("encode: %v", err)
	}
	got, err := DecodeLotReport(bytes.NewReader(first.Bytes()))
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	var second bytes.Buffer
	if err := EncodeLotReport(&second, got); err != nil {
		t.Fatalf("re-encode: %v", err)
	}
	if !bytes.Equal(first.Bytes(), second.Bytes()) {
		t.Errorf("lot report round-trip not bit-identical:\nfirst:\n%s\nsecond:\n%s",
			first.String(), second.String())
	}
	if got.Detected != 1 || got.Unstable != 1 || len(got.Dies) != 2 {
		t.Errorf("lot shape changed: %+v", got)
	}
	if !math.IsNaN(got.Dies[1].FinalMag) {
		t.Errorf("unstable die's NaN FinalMag not preserved: %v", got.Dies[1].FinalMag)
	}
	if got.SRPD != lr.SRPD {
		t.Errorf("SRPD summary changed: %+v vs %+v", got.SRPD, lr.SRPD)
	}
}

func TestReportFileRoundTrip(t *testing.T) {
	dir := t.TempDir()
	rep := sampleReport(true)
	path := dir + "/report.json"
	if err := WriteReportFile(path, rep); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadReportFile(path)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if !math.IsNaN(got.FinalSRPD) {
		t.Errorf("FinalSRPD = %v, want NaN", got.FinalSRPD)
	}

	lot := &core.LotReport{Dies: []core.DieResult{{Die: 0, Report: rep, FinalMag: math.NaN()}}, Unstable: 1}
	lotPath := dir + "/lot.json"
	if err := WriteLotReportFile(lotPath, lot); err != nil {
		t.Fatalf("write lot: %v", err)
	}
	gotLot, err := ReadLotReportFile(lotPath)
	if err != nil {
		t.Fatalf("read lot: %v", err)
	}
	if gotLot.Unstable != 1 || len(gotLot.Dies) != 1 {
		t.Errorf("lot changed: %+v", gotLot)
	}
}

func TestROCArtifactRoundTrip(t *testing.T) {
	rows := []core.FusionRow{{
		Preset:   "combined",
		Case:     "s35932-T200",
		PowerAUC: math.NaN(),
		DelayAUC: 0.9,
		FusedAUC: 1,
		PowerROC: []core.ROCPoint{{Threshold: 0.1, TPR: 1, FPR: 0}},
	}}
	path := filepath.Join(t.TempDir(), "roc.json")
	if err := WriteROCFile(path, rows); err != nil {
		t.Fatal(err)
	}
	back, err := ReadROCFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != 1 || back[0].Preset != "combined" || !math.IsNaN(back[0].PowerAUC) ||
		back[0].FusedAUC != 1 || len(back[0].PowerROC) != 1 {
		t.Errorf("ROC artifact mangled: %+v", back)
	}
}
