// Package netio loads and saves netlists by file extension, dispatching
// between the ISCAS .bench format and structural Verilog (.v): the glue
// the command-line tools share.
package netio

import (
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"superpose/internal/bench"
	"superpose/internal/netlist"
	"superpose/internal/verilog"
)

// ReadFile parses a netlist file; the format is chosen by extension
// (.bench, .v/.verilog). Parsing goes through the streaming parsers —
// proven bit-identical to the in-memory reference parsers by the fuzz
// corpus — with the arena size hint derived from the file size, so a
// million-gate netlist loads without intermediate per-line maps.
func ReadFile(path string) (*netlist.Netlist, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	// ~32 bytes per net line is the low end for generated .bench text;
	// underestimating only costs arena growth, never correctness.
	hint := 0
	if st, err := f.Stat(); err == nil {
		hint = int(st.Size() / 32)
	}
	name := strings.TrimSuffix(filepath.Base(path), filepath.Ext(path))
	switch strings.ToLower(filepath.Ext(path)) {
	case ".bench":
		return bench.ParseStreamSized(f, name, hint)
	case ".v", ".verilog":
		return verilog.ParseStreamSized(f, name, hint)
	default:
		return nil, fmt.Errorf("netio: unknown netlist format %q (want .bench or .v)", filepath.Ext(path))
	}
}

// WriteFile serializes a netlist; the format is chosen by extension.
func WriteFile(path string, n *netlist.Netlist) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	switch strings.ToLower(filepath.Ext(path)) {
	case ".bench":
		return bench.Write(f, n)
	case ".v", ".verilog":
		return verilog.Write(f, n)
	default:
		return fmt.Errorf("netio: unknown netlist format %q (want .bench or .v)", filepath.Ext(path))
	}
}
