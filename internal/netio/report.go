package netio

import (
	"encoding/json"
	"fmt"
	"io"
	"os"

	"superpose/internal/core"
)

// EncodeReport writes a certification report as indented JSON. The
// encoding is NaN-safe (see core's wire marshalers) and round-trips
// bit-identically through DecodeReport.
func EncodeReport(w io.Writer, r *core.Report) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(r)
}

// DecodeReport reads a JSON certification report.
func DecodeReport(r io.Reader) (*core.Report, error) {
	var rep core.Report
	if err := json.NewDecoder(r).Decode(&rep); err != nil {
		return nil, fmt.Errorf("netio: decode report: %w", err)
	}
	return &rep, nil
}

// EncodeLotReport writes a lot certification report as indented JSON.
func EncodeLotReport(w io.Writer, lr *core.LotReport) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(lr)
}

// DecodeLotReport reads a JSON lot certification report.
func DecodeLotReport(r io.Reader) (*core.LotReport, error) {
	var lr core.LotReport
	if err := json.NewDecoder(r).Decode(&lr); err != nil {
		return nil, fmt.Errorf("netio: decode lot report: %w", err)
	}
	return &lr, nil
}

// WriteReportFile saves a report to path as JSON.
func WriteReportFile(path string, r *core.Report) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := EncodeReport(f, r); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadReportFile loads a JSON report from path.
func ReadReportFile(path string) (*core.Report, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeReport(f)
}

// WriteLotReportFile saves a lot report to path as JSON.
func WriteLotReportFile(path string, lr *core.LotReport) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := EncodeLotReport(f, lr); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadLotReportFile loads a JSON lot report from path.
func ReadLotReportFile(path string) (*core.LotReport, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeLotReport(f)
}

// EncodeROC writes an ROC artifact — the fusion table's per-preset
// power/delay/fused curves — as indented JSON (NaN-safe via core's
// wire marshalers).
func EncodeROC(w io.Writer, rows []core.FusionRow) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(rows)
}

// DecodeROC reads a JSON ROC artifact.
func DecodeROC(r io.Reader) ([]core.FusionRow, error) {
	var rows []core.FusionRow
	if err := json.NewDecoder(r).Decode(&rows); err != nil {
		return nil, fmt.Errorf("netio: decode roc: %w", err)
	}
	return rows, nil
}

// WriteROCFile saves an ROC artifact to path as JSON.
func WriteROCFile(path string, rows []core.FusionRow) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := EncodeROC(f, rows); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// ReadROCFile loads a JSON ROC artifact from path.
func ReadROCFile(path string) ([]core.FusionRow, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return DecodeROC(f)
}
