// Package delay is the transition-delay side channel: the second
// independent observable the paper's LOS launch patterns expose for
// free. A launch-off-shift pattern pair creates transitions and races
// them against the capture edge, so the same stimuli that price
// switching power also measure the slowest sensitized path — no pattern
// re-generation, just a second instrument on the tester.
//
// The measurement model mirrors the power substrate deliberately:
//
//   - per-die process variation — one inter-die scale plus independent
//     per-gate intra-die factors — drawn from a seeded RNG stream
//     decorrelated from the power chip's (the two channels' variations
//     are physically distinct: threshold voltage vs carrier mobility
//     dominate differently);
//   - the fanout load penalty of internal/timing as the Trojan-tap
//     lever: a trigger tap adds a reader to its host net, which the
//     golden model does not expect;
//   - trigger-tree gates that toggle on the physical die extend the
//     measured sensitized path through cells absent from the golden
//     netlist entirely — the delay analogue of the power method's
//     partial trigger activity.
//
// Analysis is self-referencing like the power flow: the median
// measured/nominal ratio calibrates out the inter-die scale, and the
// score is the worst calibrated relative residual across patterns.
package delay

import (
	"math"
	"sort"

	"superpose/internal/netlist"
	"superpose/internal/power"
	"superpose/internal/timing"
)

// chipSeedSalt decorrelates the delay die's process draw from the power
// chip (which consumes the raw lot seed) and from the standalone timing
// baseline (which salts with 0x7137): the same die index yields
// independent — but individually reproducible — draws on every channel.
const chipSeedSalt = 0xD31AC8A1

// Chip is one manufactured die's timing reality over the physical
// (possibly infected) netlist, as seen by the delay measurement path.
type Chip struct {
	n   *netlist.Netlist
	lib *timing.Library
	tc  *timing.Chip
}

// Manufacture draws a die's delay reality. Variation semantics match the
// power model (inter-die scale plus per-gate intra-die factors, both
// clamped away from zero); v is the same Variation the lot applies to
// the power chip, realized through an independent RNG stream.
func Manufacture(n *netlist.Netlist, lib *timing.Library, v power.Variation, seed uint64) *Chip {
	return &Chip{
		n:   n,
		lib: lib,
		tc:  timing.Manufacture(n, lib, v.SigmaInter, v.SigmaIntra, seed^chipSeedSalt),
	}
}

// Netlist returns the physical netlist the die was manufactured over.
func (c *Chip) Netlist() *netlist.Netlist { return c.n }

// Library returns the delay library, which the defender shares: the
// golden nominal model is built from the same cells.
func (c *Chip) Library() *timing.Library { return c.lib }

// Delays returns the die's true per-gate delays (timing.Chip storage).
// MEASUREMENT-MODEL USE ONLY: the tester observes path delays, never
// per-gate delays; internal/core funnels these through a
// timing.PathWalker to produce the observable.
func (c *Chip) Delays() []float64 { return c.tc.Delays() }

// Result is the outcome of a delay-channel comparison over one pattern
// set.
type Result struct {
	// Score is the worst calibrated relative residual |m/(n·scale) − 1|
	// across usable patterns — NaN when no pattern was usable (every
	// measurement lost, or the set was empty).
	Score float64
	// Scale is the calibrated inter-die factor (median measured/nominal
	// ratio); NaN when nothing was usable.
	Scale float64
	// Used counts patterns contributing to the score; Unstable counts
	// patterns whose measurement came back NaN (lost conversions the
	// acquisition layer could not recover).
	Used     int
	Unstable int
}

// Analyze compares measured per-pattern path delays against the golden
// nominal expectations, index-aligned. The median ratio calibrates out
// the inter-die scale (robust to a Trojan contaminating a minority of
// patterns); the score is the worst remaining relative residual. NaN
// measurements and non-positive nominals are excluded from both the
// calibration and the score — graceful degradation, mirroring the power
// flow's treatment of unstable readings.
func Analyze(measured, nominal []float64) Result {
	res := Result{Score: math.NaN(), Scale: math.NaN()}
	ratios := make([]float64, 0, len(measured))
	for i := range measured {
		if math.IsNaN(measured[i]) {
			res.Unstable++
			continue
		}
		if i < len(nominal) && nominal[i] > 0 {
			ratios = append(ratios, measured[i]/nominal[i])
		}
	}
	if len(ratios) == 0 {
		return res
	}
	sort.Float64s(ratios)
	scale := ratios[len(ratios)/2]
	if len(ratios)%2 == 0 {
		scale = (ratios[len(ratios)/2-1] + ratios[len(ratios)/2]) / 2
	}
	if scale <= 0 {
		return res
	}
	res.Scale = scale
	res.Score = 0
	for i := range measured {
		if math.IsNaN(measured[i]) || i >= len(nominal) || nominal[i] <= 0 {
			continue
		}
		r := measured[i]/(nominal[i]*scale) - 1
		if r < 0 {
			r = -r
		}
		if r > res.Score {
			res.Score = r
		}
		res.Used++
	}
	return res
}
