package delay

import (
	"math"
	"testing"

	"superpose/internal/power"
	"superpose/internal/timing"
	"superpose/internal/trust"
)

func TestManufactureDecorrelatedFromPower(t *testing.T) {
	inst, err := trust.Build(trust.Case{Benchmark: "s35932", Trojan: "T200"}, 0.04)
	if err != nil {
		t.Fatal(err)
	}
	lib := timing.SAED90LikeDelays()
	v := power.ThreeSigmaIntra(0.15)

	c1 := Manufacture(inst.Host, lib, v, 42)
	c2 := Manufacture(inst.Host, lib, v, 42)
	c3 := Manufacture(inst.Host, lib, v, 43)
	d1, d2, d3 := c1.Delays(), c2.Delays(), c3.Delays()
	same, diff := true, false
	for i := range d1 {
		if d1[i] != d2[i] {
			same = false
		}
		if d1[i] != d3[i] {
			diff = true
		}
	}
	if !same {
		t.Error("same seed must reproduce the die bit-for-bit")
	}
	if !diff {
		t.Error("different seeds must draw different dies")
	}

	// Decorrelation from the standalone timing baseline: the same seed
	// through timing.Manufacture directly yields a different die.
	base := timing.Manufacture(inst.Host, lib, v.SigmaInter, v.SigmaIntra, 42)
	if d1[0] == base.Delays()[0] && d1[1] == base.Delays()[1] {
		t.Error("delay chip must not share the timing baseline's RNG stream")
	}
	if c1.Netlist() != inst.Host || c1.Library() != lib {
		t.Error("accessors must return construction arguments")
	}
}

func TestAnalyzeCalibratesInterDieScale(t *testing.T) {
	nominal := []float64{100, 220, 310, 400, 150}
	measured := make([]float64, len(nominal))
	for i, n := range nominal {
		measured[i] = n * 1.17 // pure inter-die scale: calibrates out exactly
	}
	res := Analyze(measured, nominal)
	if math.Abs(res.Scale-1.17) > 1e-12 {
		t.Errorf("scale %v, want 1.17", res.Scale)
	}
	if res.Score > 1e-12 {
		t.Errorf("pure-scale residual %v, want 0", res.Score)
	}
	if res.Used != len(nominal) || res.Unstable != 0 {
		t.Errorf("used %d unstable %d", res.Used, res.Unstable)
	}
}

func TestAnalyzeScoresOutlierPattern(t *testing.T) {
	nominal := []float64{100, 220, 310, 400, 150}
	measured := []float64{100, 220, 310 * 1.3, 400, 150} // one path 30% slow
	res := Analyze(measured, nominal)
	if math.Abs(res.Scale-1) > 1e-12 {
		t.Errorf("median calibration must resist a minority outlier: scale %v", res.Scale)
	}
	if math.Abs(res.Score-0.3) > 1e-9 {
		t.Errorf("score %v, want 0.3", res.Score)
	}
}

func TestAnalyzeGracefulDegradation(t *testing.T) {
	nan := math.NaN()
	res := Analyze([]float64{nan, 220, nan}, []float64{100, 220, 310})
	if res.Unstable != 2 || res.Used != 1 {
		t.Errorf("unstable %d used %d", res.Unstable, res.Used)
	}
	if math.IsNaN(res.Score) {
		t.Error("one stable pattern suffices for a score")
	}

	all := Analyze([]float64{nan, nan}, []float64{100, 220})
	if !math.IsNaN(all.Score) || !math.IsNaN(all.Scale) {
		t.Error("all-unstable set must deliver NaN score and scale")
	}
	if empty := Analyze(nil, nil); !math.IsNaN(empty.Score) {
		t.Error("empty set must deliver NaN score")
	}
	// Non-positive nominals carry no information.
	zeroNom := Analyze([]float64{5, 100}, []float64{0, 100})
	if zeroNom.Used != 1 {
		t.Errorf("zero-nominal pattern must be excluded; used %d", zeroNom.Used)
	}
}
