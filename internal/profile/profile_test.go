package profile

import (
	"os"
	"path/filepath"
	"testing"
)

func TestStartWritesProfiles(t *testing.T) {
	dir := t.TempDir()
	cpu := filepath.Join(dir, "cpu.pprof")
	mem := filepath.Join(dir, "mem.pprof")
	stop, err := Start(cpu, mem)
	if err != nil {
		t.Fatal(err)
	}
	// Burn a little CPU so the profile has samples to encode.
	x := 0
	for i := 0; i < 1e6; i++ {
		x += i * i
	}
	_ = x
	if err := stop(); err != nil {
		t.Fatal(err)
	}
	for _, p := range []string{cpu, mem} {
		fi, err := os.Stat(p)
		if err != nil {
			t.Fatalf("%s: %v", p, err)
		}
		if fi.Size() == 0 {
			t.Errorf("%s is empty", p)
		}
	}
}

func TestStartEmptyPathsIsNoop(t *testing.T) {
	stop, err := Start("", "")
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err != nil {
		t.Fatal(err)
	}
}

func TestStartBadCPUPath(t *testing.T) {
	if _, err := Start(filepath.Join(t.TempDir(), "no", "such", "dir", "c"), ""); err == nil {
		t.Fatal("expected error for unwritable cpu path")
	}
}

func TestStartBadMemPath(t *testing.T) {
	stop, err := Start("", filepath.Join(t.TempDir(), "no", "such", "dir", "m"))
	if err != nil {
		t.Fatal(err)
	}
	if err := stop(); err == nil {
		t.Fatal("expected error for unwritable mem path")
	}
}
