// Package profile wires runtime/pprof CPU and heap profiling into the
// command-line tools: one Start call at the top of main, one deferred
// stop, no dependency beyond the standard library.
package profile

import (
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
)

// Start begins CPU profiling to cpuPath and arranges a heap profile at
// memPath; either path may be empty to skip that profile. It returns a
// stop function that ends CPU profiling and writes the heap profile —
// call it exactly once (typically deferred from main, before exiting).
// An error opening or starting either profile leaves nothing running.
func Start(cpuPath, memPath string) (stop func() error, err error) {
	var cpuFile *os.File
	if cpuPath != "" {
		cpuFile, err = os.Create(cpuPath)
		if err != nil {
			return nil, fmt.Errorf("profile: %w", err)
		}
		if err := pprof.StartCPUProfile(cpuFile); err != nil {
			cpuFile.Close()
			return nil, fmt.Errorf("profile: start cpu: %w", err)
		}
	}
	return func() error {
		if cpuFile != nil {
			pprof.StopCPUProfile()
			if err := cpuFile.Close(); err != nil {
				return fmt.Errorf("profile: close cpu: %w", err)
			}
		}
		if memPath != "" {
			f, err := os.Create(memPath)
			if err != nil {
				return fmt.Errorf("profile: %w", err)
			}
			defer f.Close()
			runtime.GC() // materialize up-to-date allocation statistics
			if err := pprof.WriteHeapProfile(f); err != nil {
				return fmt.Errorf("profile: write heap: %w", err)
			}
		}
		return nil
	}, nil
}
