// Package fusion joins the power and delay side channels into one
// verdict, in the spirit of the multiple-parameter analyses the paper's
// related work surveys (and LASCA's learning-assisted calibration): each
// channel alone can be defeated — power by measurement pathologies the
// acquisition layer cannot fully scrub, delay by a Trojan that never
// extends a measured path — but a Trojan must evade *both* instruments
// at once to pass a fused threshold.
//
// The calibration is learned, not assumed: it is trained on clean
// control dies only (the lots the experiment harness already certifies
// to estimate false-positive rates), normalizing each channel by the
// worst score a clean die exhibited and placing the operating threshold
// a safety margin above it. By construction the trained threshold flags
// zero training controls; the honesty tests assert the same holds on
// held-out clean lots across every tester fault preset.
//
// Everything is deterministic: training canonicalizes the observation
// order before reducing, so the learned threshold is bit-identical
// regardless of the worker count that produced the observations.
package fusion

import (
	"fmt"
	"math"
	"sort"
)

// DefaultMargin is the relative safety margin above the worst clean
// training score when none is configured. The clean |S-RPD| scatter is
// heavy-tailed and training lots are small, so the max a handful of
// controls exhibits understates the tail a held-out lot will reach;
// doubling the worst training score (margin 1.0) absorbs that gap
// while staying far below the 3–6× signal an activated Trojan shows.
const DefaultMargin = 1.0

// Observation is one die's channel-score pair: the power channel's
// |final S-RPD| and the delay channel's worst calibrated path residual.
// Either may be NaN (an unstable channel on that die).
type Observation struct {
	Power float64 `json:"power"`
	Delay float64 `json:"delay"`
}

// Calibration is a learned fused operating point. The zero value is
// untrained (Enabled reports false); all fields of a trained calibration
// are finite, so the type marshals through encoding/json directly.
type Calibration struct {
	// PowerScale and DelayScale normalize each channel: the worst finite
	// score a clean training die exhibited on that channel. A scale of 0
	// disables the channel (no clean die produced a finite score — the
	// channel carries no calibrated information).
	PowerScale float64 `json:"power_scale"`
	DelayScale float64 `json:"delay_scale"`
	// Threshold is the fused verdict bound: 1 + margin. A fused score of
	// 1.0 equals the worst clean training die.
	Threshold float64 `json:"threshold"`
	// Margin echoes the trained safety margin.
	Margin float64 `json:"margin"`
	// Trained counts the clean control observations consumed.
	Trained int `json:"trained"`
}

// Train learns a calibration from clean control observations. margin is
// the relative safety margin above the worst clean score (DefaultMargin
// when non-positive). The observations are canonicalized (sorted) before
// reduction, so any permutation of the same multiset — e.g. a lot
// certified at a different worker count — trains a bit-identical
// calibration.
func Train(clean []Observation, margin float64) Calibration {
	if margin <= 0 {
		margin = DefaultMargin
	}
	obs := append([]Observation(nil), clean...)
	sort.Slice(obs, func(i, j int) bool {
		// NaN sorts first via the negated-NaN trick: any comparison with
		// NaN is false, so order NaNs explicitly.
		pi, pj := obs[i].Power, obs[j].Power
		switch {
		case math.IsNaN(pi) && !math.IsNaN(pj):
			return true
		case !math.IsNaN(pi) && math.IsNaN(pj):
			return false
		case pi != pj:
			return pi < pj
		}
		di, dj := obs[i].Delay, obs[j].Delay
		if math.IsNaN(di) {
			return !math.IsNaN(dj)
		}
		return di < dj
	})
	c := Calibration{Threshold: 1 + margin, Margin: margin, Trained: len(obs)}
	for _, o := range obs {
		if !math.IsNaN(o.Power) && o.Power > c.PowerScale {
			c.PowerScale = o.Power
		}
		if !math.IsNaN(o.Delay) && o.Delay > c.DelayScale {
			c.DelayScale = o.Delay
		}
	}
	return c
}

// Enabled reports whether the calibration was trained.
func (c Calibration) Enabled() bool { return c.Trained > 0 }

// Score returns the fused outlier score of an observation: the worse of
// the two normalized channel scores, where 1.0 marks the worst clean
// training die on that channel. A NaN channel is skipped (the other
// carries the verdict alone); a disabled channel (scale 0) likewise.
// When no channel is usable the score is NaN — the fused analogue of an
// unstable die, never silently clean.
func (c Calibration) Score(o Observation) float64 {
	score, usable := 0.0, false
	if c.PowerScale > 0 && !math.IsNaN(o.Power) {
		if s := o.Power / c.PowerScale; s > score {
			score = s
		}
		usable = true
	}
	if c.DelayScale > 0 && !math.IsNaN(o.Delay) {
		if s := o.Delay / c.DelayScale; s > score {
			score = s
		}
		usable = true
	}
	if !usable {
		return math.NaN()
	}
	return score
}

// Detect applies the learned operating point: fused score beyond the
// threshold. NaN (no usable channel) is never a detection.
func (c Calibration) Detect(o Observation) bool {
	s := c.Score(o)
	return !math.IsNaN(s) && s > c.Threshold
}

// String renders the operating point for table output.
func (c Calibration) String() string {
	return fmt.Sprintf("fused(power/%.4g, delay/%.4g, thr %.3g, n=%d)",
		c.PowerScale, c.DelayScale, c.Threshold, c.Trained)
}
