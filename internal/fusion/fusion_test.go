package fusion

import (
	"encoding/json"
	"math"
	"math/rand"
	"testing"
)

func TestTrainZeroFalsePositivesByConstruction(t *testing.T) {
	clean := []Observation{
		{Power: 0.08, Delay: 0.02},
		{Power: 0.11, Delay: 0.015},
		{Power: 0.05, Delay: 0.03},
	}
	c := Train(clean, 0)
	if !c.Enabled() {
		t.Fatal("trained calibration must be enabled")
	}
	if c.PowerScale != 0.11 || c.DelayScale != 0.03 {
		t.Fatalf("scales %v/%v", c.PowerScale, c.DelayScale)
	}
	if c.Threshold != 1+DefaultMargin {
		t.Fatalf("threshold %v", c.Threshold)
	}
	for i, o := range clean {
		if c.Detect(o) {
			t.Errorf("training control %d flagged", i)
		}
		if s := c.Score(o); s > 1 {
			t.Errorf("training control %d scores %v > 1", i, s)
		}
	}
}

func TestScoreChannels(t *testing.T) {
	c := Train([]Observation{{Power: 0.1, Delay: 0.02}}, 0.25)

	// Either channel alone can carry a detection.
	if !c.Detect(Observation{Power: 0.2, Delay: 0.01}) {
		t.Error("power excursion must be detected")
	}
	if !c.Detect(Observation{Power: 0.05, Delay: 0.08}) {
		t.Error("delay excursion must be detected")
	}
	// A NaN channel degrades to the other, never to a verdict.
	if !c.Detect(Observation{Power: math.NaN(), Delay: 0.08}) {
		t.Error("NaN power must not mask a delay detection")
	}
	if c.Detect(Observation{Power: math.NaN(), Delay: 0.01}) {
		t.Error("NaN power with a clean delay is not a detection")
	}
	if s := c.Score(Observation{Power: math.NaN(), Delay: math.NaN()}); !math.IsNaN(s) {
		t.Errorf("both channels NaN must score NaN, got %v", s)
	}
	if c.Detect(Observation{Power: math.NaN(), Delay: math.NaN()}) {
		t.Error("NaN fused score is never a detection")
	}
}

func TestTrainOrderIndependentBitIdentical(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	obs := make([]Observation, 40)
	for i := range obs {
		obs[i] = Observation{Power: rng.Float64() * 0.2, Delay: rng.Float64() * 0.05}
	}
	obs[3].Delay = math.NaN() // unstable channels must not disturb canonicalization
	obs[9].Power = math.NaN()

	ref := Train(obs, 0)
	for trial := 0; trial < 20; trial++ {
		shuf := append([]Observation(nil), obs...)
		rng.Shuffle(len(shuf), func(i, j int) { shuf[i], shuf[j] = shuf[j], shuf[i] })
		got := Train(shuf, 0)
		if math.Float64bits(got.PowerScale) != math.Float64bits(ref.PowerScale) ||
			math.Float64bits(got.DelayScale) != math.Float64bits(ref.DelayScale) ||
			math.Float64bits(got.Threshold) != math.Float64bits(ref.Threshold) {
			t.Fatalf("trial %d: permuted training diverged: %+v vs %+v", trial, got, ref)
		}
	}
}

func TestDisabledChannel(t *testing.T) {
	// No clean die produced a finite delay score: the delay channel is
	// uncalibrated and must be ignored, not treated as zero-scale outlier.
	c := Train([]Observation{
		{Power: 0.1, Delay: math.NaN()},
		{Power: 0.08, Delay: math.NaN()},
	}, 0)
	if c.DelayScale != 0 {
		t.Fatalf("delay scale %v, want disabled", c.DelayScale)
	}
	if c.Detect(Observation{Power: 0.05, Delay: 99}) {
		t.Error("an uncalibrated channel must not produce detections")
	}
	if !c.Detect(Observation{Power: 0.25, Delay: 99}) {
		t.Error("the calibrated channel still detects")
	}
}

func TestUntrainedZeroValue(t *testing.T) {
	var c Calibration
	if c.Enabled() {
		t.Error("zero value must be untrained")
	}
	if s := c.Score(Observation{Power: 1, Delay: 1}); !math.IsNaN(s) {
		t.Errorf("untrained score %v, want NaN", s)
	}
	if c.Detect(Observation{Power: 1, Delay: 1}) {
		t.Error("untrained calibration never detects")
	}
}

func TestCalibrationJSONRoundTrip(t *testing.T) {
	c := Train([]Observation{{Power: 0.1, Delay: 0.02}}, 0.3)
	b, err := json.Marshal(c)
	if err != nil {
		t.Fatal(err)
	}
	var got Calibration
	if err := json.Unmarshal(b, &got); err != nil {
		t.Fatal(err)
	}
	if got != c {
		t.Fatalf("round trip %+v vs %+v", got, c)
	}
}
