// Package report renders aligned plain-text tables, the output format of
// the experiment harness (cmd/experiments) and the CLI tools.
package report

import (
	"fmt"
	"io"
	"strings"
)

// Align selects a column's alignment.
type Align uint8

const (
	// Left-aligned column (labels).
	Left Align = iota
	// Right-aligned column (numbers).
	Right
)

// Table accumulates rows and renders them with per-column widths.
type Table struct {
	title   string
	headers []string
	aligns  []Align
	rows    [][]string
}

// New creates a table with the given column headers. All columns default
// to right alignment except the first.
func New(title string, headers ...string) *Table {
	t := &Table{title: title, headers: headers, aligns: make([]Align, len(headers))}
	for i := range t.aligns {
		if i == 0 {
			t.aligns[i] = Left
		} else {
			t.aligns[i] = Right
		}
	}
	return t
}

// SetAlign overrides a column's alignment.
func (t *Table) SetAlign(col int, a Align) *Table {
	t.aligns[col] = a
	return t
}

// Row appends a row; cells are stringified with %v. Rows shorter than the
// header are padded with empty cells; longer rows panic (a programming
// error in the caller).
func (t *Table) Row(cells ...interface{}) *Table {
	if len(cells) > len(t.headers) {
		panic(fmt.Sprintf("report: row with %d cells in a %d-column table", len(cells), len(t.headers)))
	}
	row := make([]string, len(t.headers))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
	return t
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// WriteTo renders the table.
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		b.WriteString(t.title)
		b.WriteByte('\n')
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			pad := widths[i] - len(c)
			if t.aligns[i] == Right {
				b.WriteString(strings.Repeat(" ", pad))
				b.WriteString(c)
			} else {
				b.WriteString(c)
				if i < len(cells)-1 {
					b.WriteString(strings.Repeat(" ", pad))
				}
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	for _, row := range t.rows {
		writeRow(row)
	}
	n, err := io.WriteString(w, b.String())
	return int64(n), err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	if _, err := t.WriteTo(&b); err != nil {
		return fmt.Sprintf("report: %v", err)
	}
	return b.String()
}
