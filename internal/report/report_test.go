package report

import (
	"strings"
	"testing"
)

func TestBasicRendering(t *testing.T) {
	tbl := New("Title", "Name", "Value")
	tbl.Row("alpha", 42)
	tbl.Row("b", 7)
	got := tbl.String()
	lines := strings.Split(strings.TrimRight(got, "\n"), "\n")
	if len(lines) != 4 {
		t.Fatalf("lines = %d:\n%s", len(lines), got)
	}
	if lines[0] != "Title" {
		t.Errorf("title line = %q", lines[0])
	}
	// Right-aligned numeric column: "42" and " 7" end-aligned under "Value".
	if !strings.HasSuffix(lines[2], "   42") && !strings.HasSuffix(lines[2], "42") {
		t.Errorf("row 1 = %q", lines[2])
	}
	idx42 := strings.Index(lines[2], "42") + 2
	idx7 := strings.Index(lines[3], "7") + 1
	if idx42 != idx7 {
		t.Errorf("numeric column not end-aligned:\n%s", got)
	}
}

func TestAlignmentAndPadding(t *testing.T) {
	tbl := New("", "A", "B", "C")
	tbl.SetAlign(1, Left)
	tbl.Row("x") // short row padded
	out := tbl.String()
	if strings.Contains(out, "\n\n") {
		t.Errorf("blank title must not add a line:\n%q", out)
	}
	if tbl.NumRows() != 1 {
		t.Error("NumRows")
	}
}

func TestWideCellsGrowColumns(t *testing.T) {
	tbl := New("", "H", "V")
	tbl.Row("a-very-long-label", 1)
	lines := strings.Split(strings.TrimRight(tbl.String(), "\n"), "\n")
	if len(lines[0]) < len("a-very-long-label") {
		t.Error("header row must be padded to the widest cell")
	}
}

func TestTooManyCellsPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic")
		}
	}()
	New("", "only").Row(1, 2)
}
