package journal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"superpose/internal/failpoint"
)

func openT(t *testing.T, dir string, opts Options) (*Journal, [][]byte) {
	t.Helper()
	j, recs, err := Open(dir, opts)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { j.Close() })
	return j, recs
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	j, recs := openT(t, dir, Options{})
	if len(recs) != 0 {
		t.Fatalf("fresh journal replayed %d records", len(recs))
	}
	var want [][]byte
	for i := 0; i < 20; i++ {
		rec := []byte(fmt.Sprintf(`{"seq":%d,"blob":%q}`, i, bytes.Repeat([]byte{'x'}, i*7)))
		want = append(want, rec)
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	_, got := openT(t, dir, Options{})
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}
}

func TestSegmentRotation(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{SegmentBytes: 64, NoSync: true})
	for i := 0; i < 30; i++ {
		if err := j.Append([]byte(fmt.Sprintf("record-%02d-padding-padding", i))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(segs) < 3 {
		t.Fatalf("tiny segment limit produced only %d segments", len(segs))
	}
	_, got := openT(t, dir, Options{})
	if len(got) != 30 {
		t.Fatalf("replay across %d segments yielded %d records, want 30", len(segs), len(got))
	}
	for i, rec := range got {
		if want := fmt.Sprintf("record-%02d-padding-padding", i); string(rec) != want {
			t.Fatalf("record %d = %q, want %q (order broken across segments)", i, rec, want)
		}
	}
}

// corruptTail opens the last segment and appends garbage — a torn,
// partially-written record as a crash would leave it.
func corruptTail(t *testing.T, dir string, garbage []byte) string {
	t.Helper()
	segs, err := segments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("segments: %v (%d)", err, len(segs))
	}
	name := filepath.Join(dir, segs[len(segs)-1].name)
	f, err := os.OpenFile(name, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write(garbage); err != nil {
		t.Fatal(err)
	}
	f.Close()
	return name
}

func TestTornTailTruncation(t *testing.T) {
	for _, tc := range []struct {
		name    string
		garbage []byte
	}{
		{"torn header", []byte{0x03, 0x00}},
		{"torn payload", []byte{0x10, 0x00, 0x00, 0x00, 0xde, 0xad, 0xbe, 0xef, 'p', 'a', 'r', 't'}},
		{"implausible length", []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}},
		{"checksum mismatch", func() []byte {
			// A whole record whose CRC does not match its payload.
			b := []byte{0x02, 0x00, 0x00, 0x00, 0x01, 0x02, 0x03, 0x04, 'z', 'z'}
			return b
		}()},
	} {
		t.Run(tc.name, func(t *testing.T) {
			dir := t.TempDir()
			j, _ := openT(t, dir, Options{})
			if err := j.Append([]byte("good-1")); err != nil {
				t.Fatal(err)
			}
			if err := j.Append([]byte("good-2")); err != nil {
				t.Fatal(err)
			}
			j.Close()
			name := corruptTail(t, dir, tc.garbage)
			before, _ := os.Stat(name)

			j2, recs := openT(t, dir, Options{})
			if len(recs) != 2 || string(recs[0]) != "good-1" || string(recs[1]) != "good-2" {
				t.Fatalf("replay after torn tail = %q, want the two good records", recs)
			}
			after, _ := os.Stat(name)
			if after.Size() >= before.Size() {
				t.Error("torn tail was not truncated away")
			}
			// The journal keeps working after truncation.
			if err := j2.Append([]byte("good-3")); err != nil {
				t.Fatal(err)
			}
			j2.Close()
			_, recs = openT(t, dir, Options{})
			if len(recs) != 3 || string(recs[2]) != "good-3" {
				t.Fatalf("post-truncation append lost: %q", recs)
			}
		})
	}
}

func TestMidJournalCorruptionIsAnError(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{SegmentBytes: 32, NoSync: true})
	for i := 0; i < 8; i++ {
		if err := j.Append([]byte(fmt.Sprintf("record-%d-padding-padding-padding", i))); err != nil {
			t.Fatal(err)
		}
	}
	j.Close()
	segs, _ := segments(dir)
	if len(segs) < 2 {
		t.Fatalf("want >= 2 segments, got %d", len(segs))
	}
	// Damage the tail of a NON-last segment: that is not a crash
	// signature, so replay must refuse rather than silently drop data.
	first := filepath.Join(dir, segs[0].name)
	f, err := os.OpenFile(first, os.O_WRONLY|os.O_APPEND, 0o644)
	if err != nil {
		t.Fatal(err)
	}
	f.Write([]byte{0x01, 0x02})
	f.Close()
	if _, _, err := Open(dir, Options{}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open over mid-journal damage = %v, want ErrCorrupt", err)
	}
}

func TestReset(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{SegmentBytes: 48, NoSync: true})
	for i := 0; i < 12; i++ {
		if err := j.Append([]byte(fmt.Sprintf("old-record-%02d-padding", i))); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Reset([][]byte{[]byte("live-1"), []byte("live-2")}); err != nil {
		t.Fatal(err)
	}
	// Compaction keeps appends working.
	if err := j.Append([]byte("live-3")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	_, recs := openT(t, dir, Options{})
	if len(recs) != 3 {
		t.Fatalf("replay after Reset = %q, want 3 live records", recs)
	}
	for i, want := range []string{"live-1", "live-2", "live-3"} {
		if string(recs[i]) != want {
			t.Fatalf("record %d = %q, want %q", i, recs[i], want)
		}
	}
}

func TestAppendFailpoints(t *testing.T) {
	t.Cleanup(failpoint.DisableAll)
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{})
	if err := failpoint.Enable("journal/fsync", "1*error(disk gone)"); err != nil {
		t.Fatal(err)
	}
	err := j.Append([]byte("rec"))
	if !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("Append under fsync failpoint = %v, want injected error", err)
	}
	// The journal survives the failed sync: later appends succeed.
	if err := j.Append([]byte("rec-2")); err != nil {
		t.Fatal(err)
	}
	if err := failpoint.Enable("journal/append", "1*error(enospc)"); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("rec-3")); !errors.Is(err, failpoint.ErrInjected) {
		t.Fatalf("Append under append failpoint = %v, want injected error", err)
	}
}

func TestClosedJournalRejectsAppends(t *testing.T) {
	j, _ := openT(t, t.TempDir(), Options{})
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	if err := j.Append([]byte("late")); err == nil {
		t.Fatal("closed journal accepted an append")
	}
	if err := j.Close(); err != nil {
		t.Errorf("double close: %v", err)
	}
}

// TestResetConcurrentAppend hammers the compaction path: appenders
// keep writing while Reset repeatedly rewrites the journal underneath
// them. The lock must serialize the two so that no append is torn, no
// post-compaction record is lost, and the final replay is exactly the
// last compacted snapshot plus everything appended after it.
func TestResetConcurrentAppend(t *testing.T) {
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{SegmentBytes: 256, NoSync: true})

	const appenders = 4
	const perAppender = 200
	var wg sync.WaitGroup
	errCh := make(chan error, appenders+1)
	for a := 0; a < appenders; a++ {
		wg.Add(1)
		go func(a int) {
			defer wg.Done()
			for i := 0; i < perAppender; i++ {
				rec := []byte(fmt.Sprintf(`{"appender":%d,"seq":%d}`, a, i))
				if err := j.Append(rec); err != nil {
					errCh <- fmt.Errorf("appender %d seq %d: %w", a, i, err)
					return
				}
			}
		}(a)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			snapshot := [][]byte{[]byte(fmt.Sprintf(`{"compaction":%d}`, i))}
			if err := j.Reset(snapshot); err != nil {
				errCh <- fmt.Errorf("reset %d: %w", i, err)
				return
			}
		}
	}()
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Fatal(err)
	}

	// Quiesced: one final compaction to a known snapshot, then a tail
	// of appends. Replay must be exactly snapshot+tail, in order.
	final := [][]byte{[]byte(`{"live":"a"}`), []byte(`{"live":"b"}`)}
	if err := j.Reset(final); err != nil {
		t.Fatal(err)
	}
	var tail [][]byte
	for i := 0; i < 5; i++ {
		rec := []byte(fmt.Sprintf(`{"tail":%d}`, i))
		tail = append(tail, rec)
		if err := j.Append(rec); err != nil {
			t.Fatal(err)
		}
	}
	if err := j.Close(); err != nil {
		t.Fatal(err)
	}
	want := append(append([][]byte{}, final...), tail...)
	_, got := openT(t, dir, Options{})
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("record %d = %q, want %q", i, got[i], want[i])
		}
	}

	// The torn-tail contract survives the churn: garbage appended to
	// the live segment is truncated away on the next open, and the
	// compacted records still replay intact.
	segs, err := segments(dir)
	if err != nil {
		t.Fatal(err)
	}
	last := filepath.Join(dir, segs[len(segs)-1].name)
	f, err := os.OpenFile(last, os.O_APPEND|os.O_WRONLY, 0)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte{0xde, 0xad, 0xbe}); err != nil {
		t.Fatal(err)
	}
	f.Close()
	_, got = openT(t, dir, Options{})
	if len(got) != len(want) {
		t.Fatalf("after torn tail: replayed %d records, want %d", len(got), len(want))
	}
}
