package journal

import (
	"bytes"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"testing"
)

func TestFrameRoundTrip(t *testing.T) {
	var buf bytes.Buffer
	var want [][]byte
	for i := 0; i < 10; i++ {
		rec := []byte(fmt.Sprintf(`{"seq":%d,"pad":%q}`, i, bytes.Repeat([]byte{'y'}, i*13)))
		want = append(want, rec)
		if err := WriteFrame(&buf, rec); err != nil {
			t.Fatal(err)
		}
	}
	for i, w := range want {
		got, err := ReadFrame(&buf)
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if !bytes.Equal(got, w) {
			t.Fatalf("frame %d = %q, want %q", i, got, w)
		}
	}
	if _, err := ReadFrame(&buf); err != io.EOF {
		t.Fatalf("drained stream = %v, want io.EOF", err)
	}
}

func TestFrameHeartbeat(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, nil); err != nil {
		t.Fatal(err)
	}
	if err := WriteFrame(&buf, []byte("real")); err != nil {
		t.Fatal(err)
	}
	got, err := ReadFrame(&buf)
	if err != nil || got != nil {
		t.Fatalf("heartbeat frame = (%q, %v), want (nil, nil)", got, err)
	}
	got, err = ReadFrame(&buf)
	if err != nil || string(got) != "real" {
		t.Fatalf("record after heartbeat = (%q, %v)", got, err)
	}
}

func TestFrameCorruption(t *testing.T) {
	// Checksum mismatch.
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("payload")); err != nil {
		t.Fatal(err)
	}
	b := buf.Bytes()
	b[len(b)-1] ^= 0xff
	if _, err := ReadFrame(bytes.NewReader(b)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("flipped payload byte = %v, want ErrCorrupt", err)
	}

	// Implausible length.
	bad := []byte{0xff, 0xff, 0xff, 0xff, 0, 0, 0, 0}
	if _, err := ReadFrame(bytes.NewReader(bad)); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("implausible length = %v, want ErrCorrupt", err)
	}

	// A tear mid-frame is ErrUnexpectedEOF, not corruption: the reader
	// can distinguish a dropped connection from a damaged stream.
	buf.Reset()
	if err := WriteFrame(&buf, []byte("cut-short")); err != nil {
		t.Fatal(err)
	}
	torn := buf.Bytes()[:buf.Len()-3]
	if _, err := ReadFrame(bytes.NewReader(torn)); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn frame = %v, want io.ErrUnexpectedEOF", err)
	}
	if _, err := ReadFrame(bytes.NewReader(torn[:5])); err != io.ErrUnexpectedEOF {
		t.Fatalf("torn header = %v, want io.ErrUnexpectedEOF", err)
	}
}

// TestFrameMatchesSegmentFraming pins the wire format to the on-disk
// format: a streamed frame appended verbatim to a segment file must
// replay as that record.
func TestFrameMatchesSegmentFraming(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteFrame(&buf, []byte("cross-checked")); err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	j, _ := openT(t, dir, Options{})
	if err := j.Append([]byte("cross-checked")); err != nil {
		t.Fatal(err)
	}
	j.Close()
	segs, err := segments(dir)
	if err != nil || len(segs) != 1 {
		t.Fatalf("segments: %v (%d)", err, len(segs))
	}
	disk, err := os.ReadFile(filepath.Join(dir, segs[0].name))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(disk, buf.Bytes()) {
		t.Fatalf("on-disk bytes %x differ from streamed frame %x", disk, buf.Bytes())
	}
}
