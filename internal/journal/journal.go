// Package journal is an append-only, crash-safe record log — the
// durability layer under the certification service's job registry. The
// service appends every job state transition; after a crash, replaying
// the journal reconstructs the registry and the queue.
//
// Layout: a directory of numbered segment files (wal-00000001.log, …).
// Each record is framed as
//
//	[4-byte little-endian payload length][4-byte CRC-32C of payload][payload]
//
// Appends go to the highest-numbered segment; when it exceeds the
// segment size a new one is started. A crash can tear only the tail of
// the last segment (writes are sequential appends), so replay accepts a
// torn or CRC-corrupt tail there — truncating the segment back to its
// last whole record — while the same damage in an earlier segment is
// reported as corruption.
//
// By default every append is fsynced before it returns (a record the
// caller saw succeed survives power loss). NoSync trades that guarantee
// for throughput — the torn-tail handling still keeps replay safe.
package journal

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"io"
	"os"
	"path/filepath"
	"sort"
	"sync"

	"superpose/internal/failpoint"
)

// Options configures a Journal.
type Options struct {
	// SegmentBytes starts a new segment once the active one exceeds this
	// size (default 4 MiB).
	SegmentBytes int64
	// NoSync skips the per-append fsync.
	NoSync bool
}

func (o Options) withDefaults() Options {
	if o.SegmentBytes <= 0 {
		o.SegmentBytes = 4 << 20
	}
	return o
}

// ErrCorrupt reports damage replay cannot attribute to a torn tail: a
// bad record in any segment but the last, or mid-segment damage
// followed by readable data.
var ErrCorrupt = errors.New("journal: corrupt record")

const (
	headerSize = 8
	// maxRecord guards replay against reading an absurd length out of a
	// corrupt header.
	maxRecord = 16 << 20
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Journal is an open, appendable record log. Safe for concurrent use.
type Journal struct {
	dir  string
	opts Options

	mu   sync.Mutex
	f    *os.File
	size int64
	seq  int // number of the active segment
}

// Open replays the journal at dir (creating it if needed), truncates a
// torn tail, and returns the journal opened for appends plus every
// surviving record in order.
func Open(dir string, opts Options) (*Journal, [][]byte, error) {
	opts = opts.withDefaults()
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, nil, err
	}
	segs, err := segments(dir)
	if err != nil {
		return nil, nil, err
	}

	var records [][]byte
	maxSeq := 0
	for i, seg := range segs {
		recs, err := replaySegment(filepath.Join(dir, seg.name), i == len(segs)-1)
		if err != nil {
			return nil, nil, fmt.Errorf("journal: segment %s: %w", seg.name, err)
		}
		records = append(records, recs...)
		maxSeq = seg.seq
	}

	j := &Journal{dir: dir, opts: opts, seq: maxSeq}
	if len(segs) > 0 {
		// Append to the (possibly truncated) last segment.
		name := filepath.Join(dir, segs[len(segs)-1].name)
		f, err := os.OpenFile(name, os.O_WRONLY|os.O_APPEND, 0o644)
		if err != nil {
			return nil, nil, err
		}
		st, err := f.Stat()
		if err != nil {
			f.Close()
			return nil, nil, err
		}
		j.f, j.size = f, st.Size()
	} else if err := j.rotate(); err != nil {
		return nil, nil, err
	}
	return j, records, nil
}

// Append writes one record and (unless NoSync) fsyncs it.
func (j *Journal) Append(payload []byte) error {
	if len(payload) > maxRecord {
		return fmt.Errorf("journal: record of %d bytes exceeds the %d limit", len(payload), maxRecord)
	}
	if err := failpoint.Inject("journal/append"); err != nil {
		return err
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))

	j.mu.Lock()
	defer j.mu.Unlock()
	return j.append(hdr, payload)
}

// append writes one framed record; the caller holds the lock.
func (j *Journal) append(hdr [headerSize]byte, payload []byte) error {
	if j.f == nil {
		return errors.New("journal: closed")
	}
	if _, err := j.f.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := j.f.Write(payload); err != nil {
		return err
	}
	j.size += int64(headerSize + len(payload))
	if err := failpoint.Inject("journal/fsync"); err != nil {
		return err
	}
	if !j.opts.NoSync {
		if err := j.f.Sync(); err != nil {
			return err
		}
	}
	if j.size >= j.opts.SegmentBytes {
		return j.rotate()
	}
	return nil
}

// Reset compacts the journal: the given records are written into a
// fresh segment and every older segment is removed. Used after recovery
// so replayed history does not accumulate across restarts. A crash
// mid-Reset leaves both old and new segments; replay then observes old
// records before their compacted duplicates, which is safe for any
// last-record-wins consumer.
func (j *Journal) Reset(records [][]byte) error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if err := j.rotate(); err != nil {
		return err
	}
	keepSeq := j.seq
	for _, rec := range records {
		var hdr [headerSize]byte
		binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(rec)))
		binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(rec, crcTable))
		if err := j.append(hdr, rec); err != nil {
			return err
		}
	}
	if !j.opts.NoSync && j.f != nil {
		if err := j.f.Sync(); err != nil {
			return err
		}
	}
	segs, err := segments(j.dir)
	if err != nil {
		return err
	}
	for _, seg := range segs {
		if seg.seq < keepSeq {
			if err := os.Remove(filepath.Join(j.dir, seg.name)); err != nil {
				return err
			}
		}
	}
	return nil
}

// Sync flushes the active segment to disk.
func (j *Journal) Sync() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	return j.f.Sync()
}

// Close syncs and closes the journal. Further appends fail.
func (j *Journal) Close() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.f == nil {
		return nil
	}
	err := j.f.Sync()
	if cerr := j.f.Close(); err == nil {
		err = cerr
	}
	j.f = nil
	return err
}

// rotate closes the active segment and starts the next one.
func (j *Journal) rotate() error {
	if j.f != nil {
		if err := j.f.Sync(); err != nil {
			return err
		}
		if err := j.f.Close(); err != nil {
			return err
		}
	}
	j.seq++
	f, err := os.OpenFile(filepath.Join(j.dir, segmentName(j.seq)),
		os.O_WRONLY|os.O_CREATE|os.O_EXCL, 0o644)
	if err != nil {
		return err
	}
	j.f, j.size = f, 0
	return nil
}

func segmentName(seq int) string { return fmt.Sprintf("wal-%08d.log", seq) }

type segment struct {
	name string
	seq  int
}

// segments lists the journal's segment files in replay order.
func segments(dir string) ([]segment, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var segs []segment
	for _, e := range entries {
		var seq int
		if n, _ := fmt.Sscanf(e.Name(), "wal-%08d.log", &seq); n == 1 {
			segs = append(segs, segment{name: e.Name(), seq: seq})
		}
	}
	sort.Slice(segs, func(i, k int) bool { return segs[i].seq < segs[k].seq })
	return segs, nil
}

// replaySegment reads every whole record of one segment. In the last
// segment a torn or corrupt tail is truncated away; anywhere else it is
// ErrCorrupt.
func replaySegment(path string, last bool) ([][]byte, error) {
	f, err := os.OpenFile(path, os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	defer f.Close()

	var records [][]byte
	var good int64 // offset just past the last whole, checksummed record
	truncate := func(reason string) ([][]byte, error) {
		if !last {
			return nil, fmt.Errorf("%w: %s (mid-journal)", ErrCorrupt, reason)
		}
		if err := f.Truncate(good); err != nil {
			return nil, err
		}
		if err := f.Sync(); err != nil {
			return nil, err
		}
		return records, nil
	}

	for {
		var hdr [headerSize]byte
		switch _, err := io.ReadFull(f, hdr[:]); err {
		case nil:
		case io.EOF:
			return records, nil // clean end of segment
		case io.ErrUnexpectedEOF:
			return truncate("torn record header")
		default:
			return nil, err
		}
		n := binary.LittleEndian.Uint32(hdr[0:4])
		sum := binary.LittleEndian.Uint32(hdr[4:8])
		if n > maxRecord {
			return truncate(fmt.Sprintf("implausible record length %d", n))
		}
		payload := make([]byte, n)
		switch _, err := io.ReadFull(f, payload); err {
		case nil:
		case io.EOF, io.ErrUnexpectedEOF:
			return truncate("torn record payload")
		default:
			return nil, err
		}
		if crc32.Checksum(payload, crcTable) != sum {
			return truncate("checksum mismatch")
		}
		records = append(records, payload)
		good += int64(headerSize) + int64(n)
	}
}
