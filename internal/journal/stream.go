package journal

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
)

// Frame codec for streaming journal records over a byte pipe (the HA
// replication stream). The wire format is identical to the on-disk
// segment framing:
//
//	[4-byte little-endian payload length][4-byte CRC-32C of payload][payload]
//
// so a follower can verify integrity with the same checksum the journal
// itself uses. A zero-length frame is a heartbeat: it carries no record
// and only proves the stream is alive.

// WriteFrame writes one framed record to w. An empty payload is the
// stream heartbeat.
func WriteFrame(w io.Writer, payload []byte) error {
	if len(payload) > maxRecord {
		return fmt.Errorf("journal: frame of %d bytes exceeds the %d limit", len(payload), maxRecord)
	}
	var hdr [headerSize]byte
	binary.LittleEndian.PutUint32(hdr[0:4], uint32(len(payload)))
	binary.LittleEndian.PutUint32(hdr[4:8], crc32.Checksum(payload, crcTable))
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	_, err := w.Write(payload)
	return err
}

// ReadFrame reads one framed record from r. It returns (nil, nil) for a
// heartbeat frame, io.EOF at a clean frame boundary, and ErrCorrupt
// (wrapped) on a length or checksum violation. A tear mid-frame is
// io.ErrUnexpectedEOF.
func ReadFrame(r io.Reader) ([]byte, error) {
	var hdr [headerSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint32(hdr[0:4])
	sum := binary.LittleEndian.Uint32(hdr[4:8])
	if n > maxRecord {
		return nil, fmt.Errorf("%w: implausible frame length %d", ErrCorrupt, n)
	}
	payload := make([]byte, n)
	if _, err := io.ReadFull(r, payload); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return nil, err
	}
	if crc32.Checksum(payload, crcTable) != sum {
		return nil, fmt.Errorf("%w: frame checksum mismatch", ErrCorrupt)
	}
	if n == 0 {
		return nil, nil // heartbeat
	}
	return payload, nil
}
