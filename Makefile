# Convenience targets for the superpose reproduction.

GO ?= go

.PHONY: all build test vet bench bench-parallel bench-adaptive bench-ppsfp bench-scale bench-fusion test-race cover experiments experiments-full serve smoke smoke-cluster clean

all: vet test build

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...
	gofmt -l .

# Short mode skips the multi-case pipeline integration runs.
test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench=. -benchmem .

# Parallel-engine speedup curve (workers 1 / 4 / NumCPU), archived as a
# machine-readable artifact. Speedup ≈ 1.0 on a single-core runner.
bench-parallel:
	$(GO) test -run '^$$' -bench BenchmarkCertifyLotParallel -benchtime 3x . \
		| $(GO) run ./cmd/benchjson > BENCH_parallel.json
	cat BENCH_parallel.json

# Single-flip sweep engine vs legacy clone-and-measure on the adaptive
# flow (published circuit size, workers=1), archived as a machine-
# readable artifact. The sweep arm reports the paired wall-clock
# speedup over the legacy path.
bench-adaptive:
	$(GO) test -run '^$$' -bench BenchmarkAdaptive -benchtime 3x . \
		| $(GO) run ./cmd/benchjson > BENCH_adaptive.json
	cat BENCH_adaptive.json

# PPSFP engine kind vs the scalar reference paths (published circuit
# size, workers=1), archived as a machine-readable artifact. The
# adaptive arm reports paired wall-clock speedups over the scalar sweep
# and legacy climbs; the faultsim arm over scalar batch fault
# simulation. Results are bit-identical across kinds by construction.
bench-ppsfp:
	$(GO) test -run '^$$' -bench BenchmarkPPSFP -benchtime 3x . \
		| $(GO) run ./cmd/benchjson > BENCH_ppsfp.json
	cat BENCH_ppsfp.json

# Capacity-tier scale curve (10⁴/10⁵/10⁶ gates certified, 10⁷
# parse-and-levelize only): per-point wall-clock phase timings and peak
# RSS, each point isolated in its own child process. The 10⁶ certify
# point takes minutes; bench-scale-smoke is the CI-budget variant.
bench-scale:
	$(GO) run ./cmd/benchjson -scale > BENCH_scale.json
	cat BENCH_scale.json

bench-scale-smoke:
	$(GO) run ./cmd/benchjson -scale -max-gates 100000 > BENCH_scale_ci.json
	cat BENCH_scale_ci.json

# Delay-channel measurement overhead: the same infected lot certified
# power-only, delay-only and fused (interleaved reps), plus the
# one-time fused-calibration training cost, archived as a machine-
# readable artifact.
bench-fusion:
	$(GO) run ./cmd/benchjson -fusion > BENCH_fusion.json
	cat BENCH_fusion.json

# The determinism guarantee under the race detector: shuffled, twice.
test-race:
	$(GO) test -race -count=2 -shuffle=on ./...

cover:
	$(GO) test -cover ./...

# The certification service daemon (SIGINT/SIGTERM drains gracefully).
serve:
	$(GO) run ./cmd/superposed -addr 127.0.0.1:8418

# End-to-end smoke of the daemon: boot on an ephemeral port, submit a
# small detect job, poll it to completion, assert a verdict.
smoke:
	./scripts/superposed_smoke.sh

# Cluster failover smoke: coordinator + two workers, SIGKILL the busy
# one mid-lot, require a byte-identical failed-over report.
smoke-cluster:
	./scripts/cluster_smoke.sh

# The evaluation tables and figures at a quick scale.
experiments:
	$(GO) run ./cmd/experiments -table all -scale 0.05

# Published-size benchmark circuits (slow; see EXPERIMENTS.md).
experiments-full:
	$(GO) run ./cmd/experiments -table 1 -scale 1.0

# The artifacts requested by the reproduction protocol.
artifacts:
	$(GO) test ./... 2>&1 | tee test_output.txt
	$(GO) test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

clean:
	rm -f test_output.txt bench_output.txt .fullscale_table1.txt .fs_*.txt
