// Pvsweep studies detection robustness across the process-variation space
// (the Table II axis): the same Trojan is hunted on many dies drawn at
// increasing intra-die variation magnitudes, and the achieved S-RPD and
// the Eq. 3 detection probability are reported per magnitude.
//
// The sweep runs on the library's parallel experiment engine: dies fan
// out across -workers goroutines with bit-identical rows at any count.
//
//	go run ./examples/pvsweep [-dies 5] [-scale 0.05] [-workers 4]
package main

import (
	"flag"
	"fmt"
	"log"

	"superpose"
)

func main() {
	dies := flag.Int("dies", 5, "dies per variation magnitude")
	scale := flag.Float64("scale", 0.05, "benchmark scale")
	workers := flag.Int("workers", 0, "parallel workers (0 = one per CPU, 1 = serial)")
	flag.Parse()

	c := superpose.Case{Benchmark: "s38584", Trojan: "T100"}
	inst, err := superpose.BuildBenchmark(c, *scale)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("case %s: %s\n", c, inst.Host.ComputeStats())

	rows, err := superpose.RunSigmaSweep(c, superpose.ExperimentConfig{
		Scale:    *scale,
		ChipSeed: 7,
		Workers:  *workers,
	}, []float64{0.05, 0.10, 0.15, 0.20, 0.25}, *dies)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-10s %12s %12s %12s %10s\n",
		"3σ_intra", "mean |SRPD|", "min |SRPD|", "max |SRPD|", "P(detect)")
	for _, r := range rows {
		fmt.Printf("%9.0f%% %12.4f %12.4f %12.4f %9.2f%%\n",
			100*r.Varsigma, r.SRPD.Mean, r.SRPD.Min, r.SRPD.Max, 100*r.PDetect)
	}
}
