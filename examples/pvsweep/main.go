// Pvsweep studies detection robustness across the process-variation space
// (the Table II axis): the same Trojan is hunted on many dies drawn at
// increasing intra-die variation magnitudes, and the achieved S-RPD and
// the Eq. 3 detection probability are reported per magnitude.
//
//	go run ./examples/pvsweep [-dies 5] [-scale 0.05]
package main

import (
	"flag"
	"fmt"
	"log"

	"superpose"
	"superpose/internal/stats"
)

func main() {
	dies := flag.Int("dies", 5, "dies per variation magnitude")
	scale := flag.Float64("scale", 0.05, "benchmark scale")
	flag.Parse()

	inst, err := superpose.BuildBenchmark(
		superpose.Case{Benchmark: "s38584", Trojan: "T100"}, *scale)
	if err != nil {
		log.Fatal(err)
	}
	lib := superpose.StandardCellLibrary()

	fmt.Println("case s38584-T100:", inst.Host.ComputeStats())
	fmt.Printf("%-10s %12s %12s %12s %10s\n",
		"3σ_intra", "mean |SRPD|", "min |SRPD|", "max |SRPD|", "P(detect)")

	for _, varsigma := range []float64{0.05, 0.10, 0.15, 0.20, 0.25} {
		var srpds []float64
		for die := 0; die < *dies; die++ {
			chip := superpose.Manufacture(inst.Infected, lib,
				superpose.ThreeSigmaIntra(varsigma), uint64(1000*die+7))
			dev := superpose.NewDevice(chip, 4, superpose.LOS)
			rep, err := superpose.Detect(inst.Host, lib, dev, superpose.Config{Varsigma: varsigma})
			if err != nil {
				log.Fatal(err)
			}
			s := rep.FinalSRPD
			if s < 0 {
				s = -s
			}
			srpds = append(srpds, s)
		}
		sum := stats.Summarize(srpds)
		// Detection probability of the mean achieved signal at this
		// variation level (the Table II computation).
		p := superpose.DetectionProbability(sum.Mean, varsigma)
		fmt.Printf("%9.0f%% %12.4f %12.4f %12.4f %9.2f%%\n",
			100*varsigma, sum.Mean, sum.Min, sum.Max, 100*p)
	}
}
