// Figure1 walks through the paper's Figure 1: the ideal superposition
// pair. A launch transition traverses nine non-Trojan gates into a Trojan
// AND gate whose other input is a static scan-cell value; flipping only
// that static value yields two patterns with identical benign activity,
// one activating and one deactivating the Trojan — so the power
// difference IS the Trojan, at full magnitude.
//
//	go run ./examples/figure1
package main

import (
	"fmt"
	"log"

	"superpose/internal/core"
)

func main() {
	demo, err := core.BuildFigure1()
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("Figure 1: test pattern pair leveraging superposition")
	fmt.Println()
	fmt.Println("The host: scan cells x0,x1 (chain 0) and y (chain 1); the load")
	fmt.Println("\"01\" launches a transition from x1 through nine benign gates")
	fmt.Println("(p1..p9); the Trojan trigger ANDs p5 with the static value of y.")
	fmt.Println()
	fmt.Printf("  TPa = %v   (y=1: Trojan AND passes the transition)\n", demo.TPa)
	fmt.Printf("  TPb = %v   (y=0: Trojan AND blocks it)\n", demo.TPb)
	fmt.Println()
	fmt.Printf("  golden-model prediction:  PNa = %.2f   PNb = %.2f  (identical)\n",
		demo.NominalA, demo.NominalB)
	fmt.Printf("  chip measurements:        POa = %.2f   POb = %.2f\n",
		demo.ObservedA, demo.ObservedB)
	fmt.Printf("  unique benign activity:   %d gates — the overlap is perfect\n",
		demo.UniqueBenign)
	fmt.Println()
	fmt.Printf("  superposition residual (POa-POb)-(PNa-PNb) = %.2f\n", demo.Residual)
	fmt.Printf("    = Trojan gate switching   %.2f\n", demo.TrojanEnergy)
	fmt.Printf("    + payload-induced benign  %.2f\n", demo.InducedEnergy)
	fmt.Println()
	fmt.Println("Every benign effect cancels; the Trojan signal stands alone at")
	fmt.Println("full magnitude — the ideal case the strategic modifications of")
	fmt.Println("Section IV-D drive real pattern pairs toward.")
}
