// Diagnosis closes the certification loop: after a die fails its
// transition tests, the fault dictionary localizes which defect the
// observed failing patterns are consistent with — the dictionary-based
// diagnosis lineage ([21], [22]) that the paper's superposition idea grew
// out of.
//
//	go run ./examples/diagnosis
package main

import (
	"fmt"
	"log"

	"superpose"
)

func main() {
	host, err := superpose.GenerateBenchmarkHost(superpose.BenchmarkParams{
		Name: "dut", PIs: 4, POs: 6, FFs: 24, Comb: 220, Levels: 6, Seed: 77,
	})
	if err != nil {
		log.Fatal(err)
	}
	chains := superpose.ConfigureScan(host, 2)

	// Generate the production test set and its dictionary.
	tests, err := superpose.GenerateTests(chains, superpose.ATPGOptions{Seed: 3})
	if err != nil {
		log.Fatal(err)
	}
	faults := superpose.TransitionFaults(host)
	dict := superpose.BuildFaultDictionary(chains, faults, tests.Patterns)
	fmt.Printf("dut: %s\n%s\n", host.ComputeStats(), tests)
	fmt.Printf("dictionary: %d faults x %d patterns\n\n", len(faults), len(tests.Patterns))

	// A die comes back from the tester with failing patterns. Simulate
	// that by picking a defect and reading its signature from the
	// dictionary (in reality the tester supplies this vector).
	defect := -1
	for fi := range faults {
		if dict.DetectionCount(fi) >= 2 {
			defect = fi
			break
		}
	}
	if defect < 0 {
		log.Fatal("no multiply-detected fault to demonstrate with")
	}
	failing := make([]bool, len(tests.Patterns))
	nFail := 0
	for pi := range tests.Patterns {
		failing[pi] = dict.Detects(defect, pi)
		if failing[pi] {
			nFail++
		}
	}
	fmt.Printf("tester reports %d failing patterns\n", nFail)

	// Diagnose.
	cands, err := dict.Diagnose(failing)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("top diagnosis candidates:")
	for i, c := range cands[:3] {
		fmt.Printf("  %d. %s on net %q (signature distance %d)\n",
			i+1, c.Fault.Dir, host.NameOf(c.Fault.Net), c.Distance)
	}
	if cands[0].FaultIndex == defect {
		fmt.Println("\nthe injected defect ranks first — diagnosis successful")
	} else {
		fmt.Println("\ninjected defect is equivalent to the top candidate")
	}
}
