// Quickstart: certify one simulated IC against its golden netlist.
//
// A Trust-Hub-style benchmark is materialized, a die is manufactured with
// process variation and a hidden Trojan, and the superposition pipeline —
// which sees only the golden netlist and scalar power readings — decides
// whether the die can be trusted.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"superpose"
)

func main() {
	// The defender's golden netlist and the attacker's infected one.
	inst, err := superpose.BuildBenchmark(
		superpose.Case{Benchmark: "s35932", Trojan: "T200"}, 0.05)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("golden design:", inst.Host.ComputeStats())
	fmt.Printf("hidden Trojan: %d gates (%d-tap trigger)\n\n",
		len(inst.TrojanGates), len(inst.Spec.TriggerNets))

	// Manufacture the attacked die: 3σ intra-die power variation of 15%.
	lib := superpose.StandardCellLibrary()
	chip := superpose.Manufacture(inst.Infected, lib, superpose.ThreeSigmaIntra(0.15), 1)
	device := superpose.NewDevice(chip, 4, superpose.LOS)

	// Run the detection pipeline.
	report, err := superpose.Detect(inst.Host, lib, device, superpose.Config{Varsigma: 0.10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(report.Summary())
	fmt.Printf("\ndetection probability at 3σ_intra = 25%%: %.2f%%\n",
		100*report.DetectionProbabilityAt(0.25))
}
