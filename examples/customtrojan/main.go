// Customtrojan shows the attacker's and defender's workflows on a
// user-supplied circuit: parse a .bench netlist (here generated on the
// fly), run the rare-net analysis an attacker would use to hide a
// trigger, insert a custom Trojan, and then hunt it with the
// superposition pipeline.
//
//	go run ./examples/customtrojan
package main

import (
	"bytes"
	"fmt"
	"log"

	"superpose"
)

func main() {
	// A custom host circuit: in real use, read this from a .bench file.
	host, err := superpose.GenerateBenchmarkHost(superpose.BenchmarkParams{
		Name: "acme_soc_block", PIs: 6, POs: 8, FFs: 96, Comb: 900, Levels: 7, Seed: 2024,
	})
	if err != nil {
		log.Fatal(err)
	}
	// Round-trip through the .bench format, as a file-based flow would.
	var buf bytes.Buffer
	if err := superpose.WriteBench(&buf, host); err != nil {
		log.Fatal(err)
	}
	host, err = superpose.ParseBench(&buf, "acme_soc_block")
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("host:", host.ComputeStats())

	// --- Attacker: find rarely-activated nets and hide a trigger there.
	// Nets that never fired under sampling are skipped: a trigger on a
	// constant net could never activate, even for the attacker.
	rare := superpose.FindRareNets(host, 64*64, 1, 0.25)
	var taps []superpose.RareNet
	for _, r := range rare {
		if r.Rareness > 0 && len(taps) < 4 {
			taps = append(taps, r)
		}
	}
	fmt.Printf("attacker found %d rare nets; using taps %s..%s (p=%.4f..%.4f)\n",
		len(rare), taps[0].Name, taps[3].Name, taps[0].Rareness, taps[3].Rareness)

	spec := superpose.TrojanSpec{Name: "backdoor", TreeArity: 2}
	var tapNames []string
	for _, r := range taps {
		spec.TriggerNets = append(spec.TriggerNets, r.Name)
		spec.TriggerPolarity = append(spec.TriggerPolarity, r.RareValue)
		tapNames = append(tapNames, r.Name)
	}
	// The payload victim must sit outside the trigger's fan-in cone, or
	// the splice would loop the payload back into the trigger.
	anc, err := superpose.TapAncestors(host, tapNames)
	if err != nil {
		log.Fatal(err)
	}
	for i := len(rare) - 1; i >= 0; i-- {
		if !anc[rare[i].ID] {
			spec.VictimNet = rare[i].Name
			break
		}
	}
	inst, err := superpose.InsertTrojan(host, spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("inserted %d Trojan gates; victim net %q\n\n",
		len(inst.TrojanGates), spec.VictimNet)

	// --- Foundry: manufacture the attacked die with process variation.
	lib := superpose.StandardCellLibrary()
	chip := superpose.Manufacture(inst.Infected, lib, superpose.ThreeSigmaIntra(0.15), 99)
	dev := superpose.NewDevice(chip, 4, superpose.LOS)

	// --- Defender: certify the die knowing only the golden netlist.
	rep, err := superpose.Detect(host, lib, dev, superpose.Config{Varsigma: 0.10})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("defender's report:", rep.Summary())
}
