// Lotcert certifies a whole manufacturing lot: several dies of the same
// design, each with its own process-variation draw, some lots clean and
// some attacked. The per-lot detection rates estimate the method's true-
// and false-positive behaviour — the practical question a certification
// lab actually asks.
//
//	go run ./examples/lotcert [-dies 4] [-scale 0.05]
package main

import (
	"flag"
	"fmt"
	"log"

	"superpose"
)

func main() {
	dies := flag.Int("dies", 4, "dies per lot")
	scale := flag.Float64("scale", 0.05, "benchmark scale")
	flag.Parse()

	inst, err := superpose.BuildBenchmark(
		superpose.Case{Benchmark: "s35932", Trojan: "T200"}, *scale)
	if err != nil {
		log.Fatal(err)
	}
	lib := superpose.StandardCellLibrary()

	// The process is characterized at 3σ_intra = 15%; the verdict bound
	// must assume the same ς, or clean dies of a noisier process would be
	// judged against an unrealistically tight benign envelope.
	const varsigma = 0.15

	// Generate the seed patterns once; they depend only on the golden
	// netlist and are shared by every die.
	cfg, err := superpose.WithSharedSeeds(inst.Host, superpose.Config{
		NumChains: 4,
		Varsigma:  varsigma,
		ATPG:      superpose.ATPGOptions{Seed: 7, RandomPatterns: 32, MaxFaults: 60, FaultSample: 160},
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("design %s; %d shared seed patterns; %d dies per lot\n\n",
		inst.Host.Name, len(cfg.SeedPatterns), *dies)

	lot := superpose.LotOptions{
		Dies:      *dies,
		Variation: superpose.ThreeSigmaIntra(varsigma),
		Seed:      2024,
		// A noisy tester with 0.2% reading noise, suppressed by averaging.
		MeasurementNoise:   0.002,
		MeasurementRepeats: 32,
	}

	attacked, err := superpose.CertifyLot(inst.Host, lib, inst.Infected, cfg, lot)
	if err != nil {
		log.Fatal(err)
	}
	clean, err := superpose.CertifyLot(inst.Host, lib, inst.Host, cfg, lot)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("attacked lot:", attacked)
	for _, d := range attacked.Dies {
		fmt.Printf("  die %d: |S-RPD| %.4f  detected=%v\n", d.Die, d.FinalMag, d.Report.Detected)
	}
	fmt.Println("clean lot:   ", clean)
	for _, d := range clean.Dies {
		fmt.Printf("  die %d: |S-RPD| %.4f  detected=%v\n", d.Die, d.FinalMag, d.Report.Detected)
	}
	fmt.Printf("\ntrue positive rate:  %.0f%%\n", 100*attacked.DetectionRate())
	fmt.Printf("false positive rate: %.0f%%\n", 100*clean.DetectionRate())
}
