package superpose_test

import (
	"bytes"
	"strings"
	"testing"

	"superpose"
)

// TestPublicAPIEndToEnd exercises the full flow a library user would run,
// entirely through the root package: build, persist, reload, generate
// tests, manufacture, detect.
func TestPublicAPIEndToEnd(t *testing.T) {
	inst, err := superpose.BuildBenchmark(
		superpose.Case{Benchmark: "s35932", Trojan: "T200"}, 0.04)
	if err != nil {
		t.Fatal(err)
	}

	// Netlist round trip through .bench.
	var buf bytes.Buffer
	if err := superpose.WriteBench(&buf, inst.Host); err != nil {
		t.Fatal(err)
	}
	golden, err := superpose.ParseBench(&buf, "golden")
	if err != nil {
		t.Fatal(err)
	}
	if golden.NumGates() != inst.Host.NumGates() {
		t.Fatal("bench round trip changed the netlist")
	}

	// ATPG through the facade.
	ch := superpose.ConfigureScan(golden, 4)
	tests, err := superpose.GenerateTests(ch, superpose.ATPGOptions{
		Seed: 7, RandomPatterns: 16, MaxFaults: 20, FaultSample: 60,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(tests.Patterns) == 0 {
		t.Fatal("no patterns")
	}

	// Pattern persistence round trip.
	buf.Reset()
	if err := superpose.WritePatterns(&buf, tests.Patterns); err != nil {
		t.Fatal(err)
	}
	back, err := superpose.ReadPatterns(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(tests.Patterns) {
		t.Fatal("pattern round trip lost patterns")
	}

	// Manufacture + detect, supplying the persisted patterns as seeds.
	lib := superpose.StandardCellLibrary()
	chip := superpose.Manufacture(inst.Infected, lib, superpose.ThreeSigmaIntra(0.15), 42)
	dev := superpose.NewDevice(chip, 4, superpose.LOS)
	rep, err := superpose.Detect(golden, lib, dev, superpose.Config{
		SeedPatterns: back,
		NumChains:    4,
		Varsigma:     0.10,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.Detected {
		t.Errorf("Trojan missed through the public API: %s", rep.Summary())
	}
	if !strings.Contains(rep.Summary(), "TROJAN") {
		t.Errorf("summary = %q", rep.Summary())
	}
}

func TestPublicMetrics(t *testing.T) {
	if got := superpose.RPD(110, 100); got != 0.1 {
		t.Errorf("RPD = %v", got)
	}
	if got := superpose.SRPD(12, 10, 11, 10, 1, 1); got != 0.5 {
		t.Errorf("SRPD = %v", got)
	}
	if p := superpose.DetectionProbability(0.2, 0.2); p < 0.998 {
		t.Errorf("DetectionProbability = %v", p)
	}
}

func TestPublicRareNetAnalysis(t *testing.T) {
	host, err := superpose.GenerateBenchmarkHost(superpose.BenchmarkParams{
		Name: "api", PIs: 4, POs: 4, FFs: 16, Comb: 150, Levels: 5, Seed: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	rare := superpose.FindRareNets(host, 64*16, 1, 0.5)
	if len(rare) == 0 {
		t.Fatal("no rare nets")
	}
	var taps []string
	for _, r := range rare {
		if r.Rareness > 0 && len(taps) < 2 {
			taps = append(taps, r.Name)
		}
	}
	anc, err := superpose.TapAncestors(host, taps)
	if err != nil {
		t.Fatal(err)
	}
	victim := ""
	for i := len(rare) - 1; i >= 0; i-- {
		if !anc[rare[i].ID] {
			victim = rare[i].Name
			break
		}
	}
	if victim == "" {
		t.Skip("no safe victim in this tiny host")
	}
	spec := superpose.TrojanSpec{
		Name:            "api",
		TriggerNets:     taps,
		TriggerPolarity: []bool{true, true},
		VictimNet:       victim,
	}
	inst, err := superpose.InsertTrojan(host, spec)
	if err != nil {
		t.Fatal(err)
	}
	if len(inst.TrojanGates) == 0 {
		t.Error("no trojan gates inserted")
	}
}

func TestBenchmarkCases(t *testing.T) {
	if len(superpose.BenchmarkCases()) != 5 {
		t.Error("expected the five Table I cases")
	}
}

func TestTableRunnersThroughFacade(t *testing.T) {
	if testing.Short() {
		t.Skip("pipeline experiment")
	}
	row, err := superpose.RunTableICase(
		superpose.Case{Benchmark: "s38584", Trojan: "T100"},
		superpose.ExperimentConfig{Scale: 0.04, Varsigma: 0.10})
	if err != nil {
		t.Fatal(err)
	}
	t2 := superpose.RunTableII([]superpose.TableIRow{row})
	if len(t2) != 1 || len(t2[0].Probabilities) != 5 {
		t.Fatal("table II shape")
	}
}
