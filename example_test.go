package superpose_test

import (
	"fmt"
	"strings"

	"superpose"
)

// ExampleRPD shows the Eq. 1 metric: a chip reading 5% above its nominal
// expectation.
func ExampleRPD() {
	fmt.Printf("%.3f\n", superpose.RPD(105, 100))
	// Output: 0.050
}

// ExampleSRPD reproduces the ideal Fig. 1 arithmetic: the pair's common
// activity cancels, leaving the Trojan energy over the unique nominal.
func ExampleSRPD() {
	const (
		common       = 100.0 // both patterns' shared activity
		uniqueA      = 4.0   // pattern A's extra benign activity
		uniqueB      = 4.0   // pattern B's extra benign activity
		trojanSignal = 2.0   // present only under pattern A
	)
	obsA := common + uniqueA + trojanSignal
	obsB := common + uniqueB
	nomA := common + uniqueA
	nomB := common + uniqueB
	fmt.Printf("%.2f\n", superpose.SRPD(obsA, obsB, nomA, nomB, uniqueA, uniqueB))
	// Output: 0.25
}

// ExampleDetectionProbability evaluates Table II's strongest and weakest
// cells from the paper.
func ExampleDetectionProbability() {
	fmt.Printf("%.4f\n", superpose.DetectionProbability(0.259, 0.05))
	fmt.Printf("%.4f\n", superpose.DetectionProbability(0.136, 0.25))
	// Output:
	// 1.0000
	// 0.9487
}

// ExampleParseBench parses a miniature full-scan netlist.
func ExampleParseBench() {
	src := `
INPUT(a)
OUTPUT(z)
q = DFF(d)
d = XOR(q, a)
z = NOT(q)
`
	n, err := superpose.ParseBench(strings.NewReader(src), "mini")
	if err != nil {
		panic(err)
	}
	fmt.Println(n.ComputeStats())
	// Output: mini: 4 gates (2 comb), 1 PI, 1 PO, 1 FF, depth 1
}
