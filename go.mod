module superpose

go 1.22
