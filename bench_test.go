// Benchmark harness regenerating every table and figure of the paper's
// evaluation (§V). Each benchmark reports the achieved signal magnitudes
// as custom metrics alongside the runtime, so `go test -bench=.` doubles
// as a shape check of the reproduction:
//
//	BenchmarkTableI/s35932-T200    ...  srpd-strategic  rpd-atpg  mag-atpg
//	BenchmarkTableII               ...  p-detect-25pct
//
// The benches run at a reduced benchmark scale (see DESIGN.md §2 and
// EXPERIMENTS.md); `cmd/experiments -scale 1.0` regenerates the tables at
// published circuit sizes.
package superpose_test

import (
	"runtime"
	"sync"
	"testing"
	"time"

	"superpose"
	"superpose/internal/atpg"
	"superpose/internal/baseline"
	"superpose/internal/core"
	"superpose/internal/scan"
	"superpose/internal/sim"
	"superpose/internal/stats"
	"superpose/internal/timing"
	"superpose/internal/trust"
)

const (
	benchScale    = 0.04
	benchVarsigma = 0.15
)

func benchATPG() atpg.Options {
	return atpg.Options{Seed: 7, RandomPatterns: 32, MaxFaults: 40, FaultSample: 120}
}

// caseFixture caches the expensive per-case setup across bench iterations.
type caseFixture struct {
	inst *superpose.TrojanInstance
	lib  *superpose.CellLibrary
	dev  *superpose.Device
}

var (
	fixturesMu sync.Mutex
	fixtures   = map[string]*caseFixture{}
)

func fixtureFor(b *testing.B, c trust.Case) *caseFixture {
	b.Helper()
	fixturesMu.Lock()
	defer fixturesMu.Unlock()
	if f, ok := fixtures[c.String()]; ok {
		return f
	}
	inst, err := trust.Build(c, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	lib := superpose.StandardCellLibrary()
	chip := superpose.Manufacture(inst.Infected, lib, superpose.ThreeSigmaIntra(benchVarsigma), 42)
	f := &caseFixture{inst: inst, lib: lib, dev: superpose.NewDevice(chip, 4, superpose.LOS)}
	fixtures[c.String()] = f
	return f
}

// BenchmarkTableI regenerates Table I: one sub-benchmark per Trust-Hub
// case, running the full pipeline (ATPG seeds, adaptive flow,
// superposition, strategic modification) and reporting the row's
// signal magnitudes as metrics.
func BenchmarkTableI(b *testing.B) {
	for _, c := range trust.Cases() {
		c := c
		b.Run(c.String(), func(b *testing.B) {
			f := fixtureFor(b, c)
			var row core.TableIRow
			for i := 0; i < b.N; i++ {
				rep, err := superpose.Detect(f.inst.Host, f.lib, f.dev, superpose.Config{
					NumChains: 4, ATPG: benchATPG(), Varsigma: 0.10,
				})
				if err != nil {
					b.Fatal(err)
				}
				row.ATPGRPD = abs(rep.SeedReading.RPD)
				row.AdaptiveRPD = abs(rep.AdaptiveReading.RPD)
				row.SuperSRPD = abs(rep.Superposition.SRPD)
				row.StrategicSRPD = abs(rep.FinalSRPD)
			}
			b.ReportMetric(row.ATPGRPD, "rpd-atpg")
			b.ReportMetric(row.AdaptiveRPD, "rpd-adaptive")
			b.ReportMetric(row.SuperSRPD, "srpd-super")
			b.ReportMetric(row.StrategicSRPD, "srpd-strategic")
			if row.ATPGRPD > 0 {
				b.ReportMetric(row.StrategicSRPD/row.ATPGRPD, "mag-atpg")
			}
		})
	}
}

// BenchmarkTableII regenerates Table II: the Eq. 3 detection-probability
// computation over the achieved S-RPD values of Table I.
func BenchmarkTableII(b *testing.B) {
	rows := []core.TableIRow{}
	for _, c := range trust.Cases() {
		f := fixtureFor(b, c)
		rep, err := superpose.Detect(f.inst.Host, f.lib, f.dev, superpose.Config{
			NumChains: 4, ATPG: benchATPG(), Varsigma: 0.10,
		})
		if err != nil {
			b.Fatal(err)
		}
		rows = append(rows, core.TableIRow{Case: c.String(), StrategicSRPD: abs(rep.FinalSRPD)})
	}
	b.ResetTimer()
	var worst float64
	for i := 0; i < b.N; i++ {
		t2 := core.RunTableII(rows)
		worst = 1
		for _, r := range t2 {
			if p := r.Probabilities[len(r.Probabilities)-1]; p < worst {
				worst = p
			}
		}
	}
	b.ReportMetric(worst, "p-detect-25pct-min")
}

// BenchmarkFigure1 regenerates the Figure 1 demonstration.
func BenchmarkFigure1(b *testing.B) {
	var residual float64
	for i := 0; i < b.N; i++ {
		demo, err := core.BuildFigure1()
		if err != nil {
			b.Fatal(err)
		}
		residual = demo.Residual
	}
	b.ReportMetric(residual, "residual")
}

// BenchmarkFigure2 regenerates the Figure 2 modification-suite table.
func BenchmarkFigure2(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if rows := core.Figure2Rows(); len(rows) != 6 {
			b.Fatal("wrong row count")
		}
	}
}

// BenchmarkEquation3 measures the benign-hypothesis Monte Carlo behind
// Table II's interpretation: the distribution of |S-RPD| on clean dies.
func BenchmarkEquation3(b *testing.B) {
	rng := stats.NewRNG(99)
	sigma := benchVarsigma / 3
	var maxBenign float64
	for i := 0; i < b.N; i++ {
		var poA, poB float64
		pnCmn := 100.0
		poA, poB = pnCmn, pnCmn
		var pnAu, pnBu float64
		for g := 0; g < 10; g++ {
			poA += 1 + sigma*rng.Norm()
			pnAu++
		}
		for g := 0; g < 8; g++ {
			poB += 1 + sigma*rng.Norm()
			pnBu++
		}
		s := core.SRPD(poA, poB, pnCmn+pnAu, pnCmn+pnBu, pnAu, pnBu)
		if s < 0 {
			s = -s
		}
		if s > maxBenign {
			maxBenign = s
		}
	}
	b.ReportMetric(maxBenign, "max-benign-srpd")
}

// BenchmarkAblationLOSvsLOC quantifies the §IV-A design choice: the same
// adaptive flow driven through Launch-on-Capture loses the direct
// bit-adjacency control over launch activity. Both arms run from the same
// random seed patterns; the metrics compare the adaptive signal reached.
func BenchmarkAblationLOSvsLOC(b *testing.B) {
	c := trust.Cases()[0]
	inst, err := trust.Build(c, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	lib := superpose.StandardCellLibrary()
	for _, mode := range []scan.Mode{scan.LOS, scan.LOC} {
		mode := mode
		b.Run(mode.String(), func(b *testing.B) {
			chip := superpose.Manufacture(inst.Infected, lib, superpose.ThreeSigmaIntra(benchVarsigma), 42)
			dev := superpose.NewDevice(chip, 4, mode)
			ev := superpose.NewEvaluator(inst.Host, lib, dev, 4, mode)
			rng := stats.NewRNG(5)
			var seeds []*scan.Pattern
			for i := 0; i < 16; i++ {
				seeds = append(seeds, ev.Chains().RandomPattern(rng))
			}
			ev.Calibrate(seeds)
			var best float64
			for i := 0; i < b.N; i++ {
				ar := ev.Adaptive(seeds[0], core.AdaptiveOptions{MaxSteps: 40})
				best = ar.Steps[ar.Best].Reading.RPD
			}
			b.ReportMetric(best, "rpd-adaptive")
		})
	}
}

// BenchmarkAblationNoAdaptive quantifies the §IV-B design choice: applying
// superposition directly to raw ATPG pattern pairs, without the adaptive
// flow to place them, yields a far weaker signal than the full pipeline.
func BenchmarkAblationNoAdaptive(b *testing.B) {
	c := trust.Cases()[0]
	f := fixtureFor(b, c)
	ev := superpose.NewEvaluator(f.inst.Host, f.lib, f.dev, 4, superpose.LOS)
	ch := ev.Chains()
	res, err := superpose.GenerateTests(ch, benchATPG())
	if err != nil {
		b.Fatal(err)
	}
	ev.Calibrate(res.Patterns)
	var best float64
	for i := 0; i < b.N; i++ {
		best = 0
		for j := 1; j < len(res.Patterns); j++ {
			pa := ev.AnalyzePair(res.Patterns[j-1], res.Patterns[j])
			if s := abs(pa.SRPD); s > best {
				best = s
			}
		}
	}
	b.ReportMetric(best, "srpd-raw-pairs")
}

// BenchmarkBaselines reproduces the paper's comparison framing (§V-C):
// random-pattern and region-confined searches against the same die the
// pipeline certifies, reporting the best signal each method reaches.
func BenchmarkBaselines(b *testing.B) {
	c := trust.Cases()[0]
	f := fixtureFor(b, c)
	b.Run("random", func(b *testing.B) {
		ev := superpose.NewEvaluator(f.inst.Host, f.lib, f.dev, 4, superpose.LOS)
		var best float64
		for i := 0; i < b.N; i++ {
			best = baseline.RandomSearch(ev, 128, 5).BestRPD
		}
		b.ReportMetric(best, "rpd-best")
	})
	b.Run("region", func(b *testing.B) {
		ev := superpose.NewEvaluator(f.inst.Host, f.lib, f.dev, 4, superpose.LOS)
		var best float64
		for i := 0; i < b.N; i++ {
			best = baseline.RegionSearch(ev, 32, 5).BestRPD
		}
		b.ReportMetric(best, "rpd-best")
	})
}

// BenchmarkAblationChainReorder contrasts the default (declaration-order)
// scan configuration with connectivity-grouped chains à la the paper's
// [15]: grouped chains concentrate per-region activation, which shows up
// as a stronger region-baseline signal.
func BenchmarkAblationChainReorder(b *testing.B) {
	c := trust.Cases()[0]
	f := fixtureFor(b, c)
	configs := []struct {
		name string
		ch   *scan.Chains
	}{
		{"declaration-order", scan.Configure(f.inst.Host, 4)},
		{"connectivity-grouped", scan.ReorderByConnectivity(f.inst.Host, 4, 3)},
	}
	for _, cfg := range configs {
		cfg := cfg
		b.Run(cfg.name, func(b *testing.B) {
			// The device transplants the same chain order onto the
			// physical netlist so patterns mean the same thing on both
			// sides.
			chip := superpose.Manufacture(f.inst.Infected, f.lib,
				superpose.ThreeSigmaIntra(benchVarsigma), 42)
			dev, err := core.NewDeviceFromChains(chip, cfg.ch, superpose.LOS)
			if err != nil {
				b.Fatal(err)
			}
			ev := core.NewEvaluatorFromChains(f.inst.Host, f.lib, dev, cfg.ch, superpose.LOS)
			var best float64
			for i := 0; i < b.N; i++ {
				best = baseline.RegionSearch(ev, 32, 5).BestRPD
			}
			b.ReportMetric(best, "region-rpd")
		})
	}
}

// BenchmarkBaselineDelayFingerprint runs the path-delay-fingerprint
// comparison (the paper's [1] family) against the same benchmark Trojan:
// the reported metrics show the infected die's worst calibrated timing
// residual sitting inside the clean die's variation envelope — the
// weakness that motivates the power-superposition approach.
func BenchmarkBaselineDelayFingerprint(b *testing.B) {
	inst, err := trust.Build(trust.Cases()[0], benchScale)
	if err != nil {
		b.Fatal(err)
	}
	lib := timing.SAED90LikeDelays()
	m := timing.NewModel(inst.Host, lib)
	var infectedRes, cleanRes float64
	for i := 0; i < b.N; i++ {
		ri, err := timing.Fingerprint(inst.Host, m,
			timing.Manufacture(inst.Infected, lib, 0.15, 0.03, 42).Measure(), 0.15)
		if err != nil {
			b.Fatal(err)
		}
		rc, err := timing.Fingerprint(inst.Host, m,
			timing.Manufacture(inst.Host, lib, 0.15, 0.03, 43).Measure(), 0.15)
		if err != nil {
			b.Fatal(err)
		}
		infectedRes, cleanRes = ri.MaxResidual, rc.MaxResidual
	}
	b.ReportMetric(infectedRes, "residual-infected")
	b.ReportMetric(cleanRes, "residual-clean")
}

// BenchmarkCertifyLotParallel measures the deterministic parallel engine
// on whole-lot certification at fixed worker counts, reporting each
// count's wall-clock speedup over the serial path as a custom metric
// (speedup ≈ 1.0 is expected on a single-core runner; the engine's value
// there is determinism, not throughput). The serial baseline is timed
// once, lazily, so any sub-benchmark can run in isolation.
func BenchmarkCertifyLotParallel(b *testing.B) {
	c := trust.Cases()[0]
	inst, err := trust.Build(c, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	lib := superpose.StandardCellLibrary()
	cfg, err := superpose.WithSharedSeeds(inst.Host, superpose.Config{
		NumChains: 4, Varsigma: 0.10, ATPG: benchATPG(),
	})
	if err != nil {
		b.Fatal(err)
	}
	const lotDies = 8
	runLot := func(workers int) error {
		_, err := superpose.CertifyLot(inst.Host, lib, inst.Infected, cfg, superpose.LotOptions{
			Dies:      lotDies,
			Variation: superpose.ThreeSigmaIntra(benchVarsigma),
			Seed:      5,
			Workers:   workers,
		})
		return err
	}

	var baselineOnce sync.Once
	var baselineNs float64
	serialNs := func(b *testing.B) float64 {
		baselineOnce.Do(func() {
			const reps = 2
			start := time.Now()
			for i := 0; i < reps; i++ {
				if err := runLot(1); err != nil {
					b.Fatal(err)
				}
			}
			baselineNs = float64(time.Since(start).Nanoseconds()) / reps
		})
		return baselineNs
	}

	counts := []struct {
		name    string
		workers int
	}{
		{"workers=1", 1},
		{"workers=4", 4},
		{"workers=NumCPU", runtime.NumCPU()},
	}
	for _, wc := range counts {
		wc := wc
		b.Run(wc.name, func(b *testing.B) {
			base := serialNs(b)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if err := runLot(wc.workers); err != nil {
					b.Fatal(err)
				}
			}
			perOp := float64(b.Elapsed().Nanoseconds()) / float64(b.N)
			b.ReportMetric(base/perOp, "speedup")
			b.ReportMetric(float64(wc.workers), "workers")
		})
	}
}

// BenchmarkAdaptive contrasts the two candidate-measurement paths of the
// adaptive flow on the same climb: the legacy clone-and-measure loop
// (every candidate materialized and launched through the full netlist)
// against the single-flip sweep engine (base simulated once per step,
// only flip cones re-evaluated, sparse pricing). Both produce
// bit-identical results — the equivalence suite pins that — so the only
// difference the benchmark shows is cost. The sweep arm interleaves an
// untimed legacy run with every timed sweep run and reports the paired
// wall-clock ratio as "speedup": both paths see the same machine
// conditions, so the ratio is stable where a one-shot baseline is not.
func BenchmarkAdaptive(b *testing.B) {
	// The sweep's advantage is structural — single-flip cones small
	// relative to the netlist — so this benchmark runs the headline case
	// closer to published size than the toy fixture scale, where a
	// 64-flip union cone covers the whole circuit.
	const adaptiveBenchScale = 1.0
	inst, err := trust.Build(trust.Cases()[0], adaptiveBenchScale)
	if err != nil {
		b.Fatal(err)
	}
	lib := superpose.StandardCellLibrary()
	chip := superpose.Manufacture(inst.Infected, lib, superpose.ThreeSigmaIntra(benchVarsigma), 42)
	dev := superpose.NewDevice(chip, 4, superpose.LOS)
	ev := superpose.NewEvaluator(inst.Host, lib, dev, 4, superpose.LOS)
	seed := ev.Chains().RandomPattern(stats.NewRNG(5))
	ev.Calibrate([]*scan.Pattern{seed})
	// Both arms pin the scalar backend: this benchmark isolates the
	// sweep-vs-legacy measurement-path difference, holding the simulation
	// engine fixed at the reference kind. BenchmarkPPSFP measures the
	// engine-kind axis on the same climb.
	opt := core.AdaptiveOptions{MaxSteps: 4, Engine: sim.EngineScalar}
	legacyOpt := opt
	legacyOpt.LegacyMeasure = true

	b.Run("legacy", func(b *testing.B) {
		var best float64
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			ar := ev.Adaptive(seed, legacyOpt)
			best = ar.Steps[ar.Best].Reading.RPD
		}
		b.ReportMetric(best, "rpd-adaptive")
	})
	b.Run("sweep", func(b *testing.B) {
		ev.Adaptive(seed, opt) // warm caches (sweep plans on first call)
		var best float64
		var legacyTotal, sweepTotal time.Duration
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			t0 := time.Now()
			ev.Adaptive(seed, legacyOpt)
			legacyTotal += time.Since(t0)
			b.StartTimer()
			t1 := time.Now()
			ar := ev.Adaptive(seed, opt)
			sweepTotal += time.Since(t1)
			best = ar.Steps[ar.Best].Reading.RPD
		}
		b.ReportMetric(float64(legacyTotal)/float64(sweepTotal), "speedup")
		b.ReportMetric(best, "rpd-adaptive")
	})
}

// BenchmarkPPSFP measures the engine-kind axis: the 64-way bit-parallel
// PPSFP configuration (SoA netlist core, delta propagation in the sweep,
// vectorized sparse pricing) against the scalar reference paths, on the
// same workloads at published circuit scale. Every arm interleaves its
// untimed baseline run with the timed run and reports paired wall-clock
// ratios — both paths see the same machine conditions, so the ratios
// are stable where one-shot baselines are not. The engine selector
// changes cost only: the equivalence and exhaustive suites pin that
// every arm's results are bit-identical.
func BenchmarkPPSFP(b *testing.B) {
	const ppsfpBenchScale = 1.0
	inst, err := trust.Build(trust.Cases()[0], ppsfpBenchScale)
	if err != nil {
		b.Fatal(err)
	}
	lib := superpose.StandardCellLibrary()

	// The adaptive climb of BenchmarkAdaptive, with the engine selector
	// as the only moving part: timed PPSFP-kind climbs against untimed
	// interleaved sweep-scalar and legacy-scalar climbs.
	b.Run("adaptive", func(b *testing.B) {
		chip := superpose.Manufacture(inst.Infected, lib, superpose.ThreeSigmaIntra(benchVarsigma), 42)
		dev := superpose.NewDevice(chip, 4, superpose.LOS)
		ev := superpose.NewEvaluator(inst.Host, lib, dev, 4, superpose.LOS)
		seed := ev.Chains().RandomPattern(stats.NewRNG(5))
		ev.Calibrate([]*scan.Pattern{seed})
		ppsfpOpt := core.AdaptiveOptions{MaxSteps: 4, Engine: sim.EnginePPSFP}
		scalarOpt := core.AdaptiveOptions{MaxSteps: 4, Engine: sim.EngineScalar}
		legacyOpt := scalarOpt
		legacyOpt.LegacyMeasure = true
		ev.Adaptive(seed, ppsfpOpt) // warm caches (sweep plans on first call)
		var best float64
		var legacyTotal, scalarTotal, ppsfpTotal time.Duration
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			t0 := time.Now()
			ev.Adaptive(seed, legacyOpt)
			legacyTotal += time.Since(t0)
			t0 = time.Now()
			ev.Adaptive(seed, scalarOpt)
			scalarTotal += time.Since(t0)
			b.StartTimer()
			t0 = time.Now()
			ar := ev.Adaptive(seed, ppsfpOpt)
			ppsfpTotal += time.Since(t0)
			best = ar.Steps[ar.Best].Reading.RPD
		}
		b.ReportMetric(float64(scalarTotal)/float64(ppsfpTotal), "speedup-vs-sweep")
		b.ReportMetric(float64(legacyTotal)/float64(ppsfpTotal), "speedup-vs-legacy")
		b.ReportMetric(best, "rpd-adaptive")
	})

	// Batch fault simulation: PPSFP event-driven cone propagation against
	// the scalar per-fault full re-simulation, single worker, on a bounded
	// collapsed-fault sample.
	b.Run("faultsim", func(b *testing.B) {
		ch := superpose.ConfigureScan(inst.Host, 4)
		fs := atpg.NewFaultSimulator(ch)
		fs.SetWorkers(1)
		faults, _ := atpg.Collapse(inst.Host, atpg.FaultList(inst.Host))
		if len(faults) > 512 {
			faults = faults[:512]
		}
		rng := stats.NewRNG(11)
		pats := make([]*scan.Pattern, 64)
		for i := range pats {
			pats[i] = ch.RandomPattern(rng)
		}
		var scalarTotal, ppsfpTotal time.Duration
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			b.StopTimer()
			fs.SetEngine(sim.EngineScalar)
			t0 := time.Now()
			fs.DetectBatch(pats, faults)
			scalarTotal += time.Since(t0)
			b.StartTimer()
			fs.SetEngine(sim.EnginePPSFP)
			t0 = time.Now()
			fs.DetectBatch(pats, faults)
			ppsfpTotal += time.Since(t0)
		}
		b.ReportMetric(float64(scalarTotal)/float64(ppsfpTotal), "speedup-vs-scalar")
	})
}

// BenchmarkFusion measures the multi-parameter fusion pipeline: the
// fused power×delay lot certification against the power-only
// certification of the same lot. The fused arm interleaves an untimed
// power-only run with every timed fused run and reports the paired
// wall-clock ratio as "overhead" — the cost of the second measurement
// channel plus the fused scoring. The calibration trains once on a
// clean control lot outside the timed region (the service caches it
// the same way), and the detection outcome rides along as metrics.
func BenchmarkFusion(b *testing.B) {
	// ς = 0.08: the fused threshold doubles the worst clean training
	// score, and at the default bench ς the infected/clean separation
	// narrows below that bound (see EXPERIMENTS.md).
	const fusionVarsigma = 0.08
	inst, err := trust.Build(trust.Cases()[0], benchScale)
	if err != nil {
		b.Fatal(err)
	}
	lib := superpose.StandardCellLibrary()
	fused, err := superpose.WithSharedSeeds(inst.Host, superpose.Config{
		NumChains:   4,
		Varsigma:    fusionVarsigma,
		ATPG:        benchATPG(),
		MaxPairs:    6,
		Acquisition: superpose.RobustAcquisition(),
		Channel:     superpose.ChannelFused,
	})
	if err != nil {
		b.Fatal(err)
	}
	const lotDies = 4
	lot := func(salt int) superpose.LotOptions {
		return superpose.LotOptions{
			Dies:      lotDies,
			Variation: superpose.ThreeSigmaIntra(fusionVarsigma),
			Seed:      superpose.DeriveSeed(99, salt),
			Workers:   1,
		}
	}

	// Train on a clean control lot (Fusion still nil: both channels
	// measured, no fused verdict yet).
	train, err := superpose.CertifyLot(inst.Host, lib, inst.Host, fused, lot(1))
	if err != nil {
		b.Fatal(err)
	}
	var obs []superpose.FusionObservation
	for _, d := range train.Dies {
		obs = append(obs, superpose.FusionObservation{Power: d.FinalMag, Delay: d.DelayMag})
	}
	cal := superpose.TrainFusion(obs, 0)
	fused.Fusion = &cal

	powerOnly := fused
	powerOnly.Channel = superpose.ChannelPower
	powerOnly.Fusion = nil

	var detected, dies int
	var powerTotal, fusedTotal time.Duration
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		t0 := time.Now()
		if _, err := superpose.CertifyLot(inst.Host, lib, inst.Infected, powerOnly, lot(2)); err != nil {
			b.Fatal(err)
		}
		powerTotal += time.Since(t0)
		b.StartTimer()
		t1 := time.Now()
		lr, err := superpose.CertifyLot(inst.Host, lib, inst.Infected, fused, lot(2))
		if err != nil {
			b.Fatal(err)
		}
		fusedTotal += time.Since(t1)
		detected, dies = lr.FusedDetected, len(lr.Dies)
	}
	b.ReportMetric(float64(fusedTotal)/float64(powerTotal), "overhead")
	b.ReportMetric(float64(detected), "fused-detected")
	b.ReportMetric(float64(dies), "dies")
	b.ReportMetric(cal.Threshold, "threshold")
}

// BenchmarkATPG measures seed-pattern generation throughput.
func BenchmarkATPG(b *testing.B) {
	c := trust.Cases()[0]
	inst, err := trust.Build(c, benchScale)
	if err != nil {
		b.Fatal(err)
	}
	ch := superpose.ConfigureScan(inst.Host, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := superpose.GenerateTests(ch, benchATPG()); err != nil {
			b.Fatal(err)
		}
	}
}

func abs(x float64) float64 {
	if x < 0 {
		return -x
	}
	return x
}

// BenchmarkAblationGlitch quantifies the zero-delay simplification
// documented in DESIGN.md §6: unit-delay event simulation of the same
// launches counts the hazard (glitch) activity the power model ignores.
// The reported metric is the mean glitch fraction of total events.
func BenchmarkAblationGlitch(b *testing.B) {
	inst, err := trust.Build(trust.Cases()[0], benchScale)
	if err != nil {
		b.Fatal(err)
	}
	ch := superpose.ConfigureScan(inst.Host, 4)
	ev := sim.NewEventSimulator(inst.Host)
	rng := stats.NewRNG(3)
	var fraction float64
	for i := 0; i < b.N; i++ {
		totalEvents, totalGlitch := 0, 0
		for k := 0; k < 16; k++ {
			p := ch.RandomPattern(rng)
			f1, f2 := ch.LOSSources(p)
			rep, err := ev.AnalyzeLaunch(f1, f2)
			if err != nil {
				b.Fatal(err)
			}
			totalEvents += rep.UnitDelayEvents
			totalGlitch += rep.GlitchEvents
		}
		if totalEvents > 0 {
			fraction = float64(totalGlitch) / float64(totalEvents)
		}
	}
	b.ReportMetric(fraction, "glitch-fraction")
}
